"""The deterministic fault-injection harness (repro.faults).

Chaos that cannot be reproduced is worse than no chaos: every rule
semantics test here pins the plan-language contract docs/FAULTS.md
promises — site/match scoping, bounded firing budgets that hold
across processes, and the split between process-level kinds
(performed in place) and write-level kinds (returned to the durable
writer).
"""

import json
import multiprocessing

import pytest

from repro import faults
from repro.faults import (
    CRASH_EXIT_CODE,
    FAULT_PLAN_ENV,
    FaultPlan,
    FaultPlanError,
    InjectedCrash,
    InjectedError,
    active_plan,
    maybe_fail,
)


def _plan(rules, state_dir=None):
    doc = {"faults": rules}
    if state_dir is not None:
        doc["state_dir"] = str(state_dir)
    return FaultPlan(doc)


def _activate(monkeypatch, rules, state_dir=None):
    doc = {"faults": rules}
    if state_dir is not None:
        doc["state_dir"] = str(state_dir)
    monkeypatch.setenv(FAULT_PLAN_ENV, json.dumps(doc))


class TestPlanParsing:
    def test_no_env_means_no_plan(self):
        assert active_plan() is None
        assert maybe_fail("worker.execute", "abc") is None

    def test_inline_plan_parses(self, monkeypatch):
        _activate(monkeypatch, [
            {"site": "worker.execute", "kind": "error"},
        ])
        plan = active_plan()
        assert plan is not None
        assert plan.rules[0].site == "worker.execute"

    def test_file_plan_defaults_state_dir(self, tmp_path, monkeypatch):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({
            "faults": [{"site": "x", "kind": "error"}],
        }))
        monkeypatch.setenv(FAULT_PLAN_ENV, str(path))
        plan = active_plan()
        assert plan.state_dir == tmp_path / "plan.json.state"

    @pytest.mark.parametrize("doc", [
        {},                                          # no faults
        {"faults": []},                              # empty faults
        {"faults": [{"kind": "error"}]},             # missing site
        {"faults": [{"site": "x"}]},                 # missing kind
        {"faults": [{"site": "x", "kind": "melt"}]},  # unknown kind
        {"faults": [{"site": "x", "kind": "error",
                     "times": 0}]},                  # bad budget
    ])
    def test_malformed_plans_raise(self, doc):
        with pytest.raises(FaultPlanError):
            FaultPlan(doc)

    @pytest.mark.parametrize("site", [
        "", "   ", "Bad Site!", "transport.Send", "a..b",
        ".leading", "trailing.", "spa ce.dot",
    ])
    def test_malformed_site_names_raise(self, site):
        with pytest.raises(FaultPlanError):
            FaultPlan({"faults": [{"site": site, "kind": "error"}]})

    @pytest.mark.parametrize("site", [
        "x", "worker.execute", "transport.send", "host.heartbeat",
        "cache.entry.write", "a-b.c_d.e0",
    ])
    def test_wellformed_site_names_parse(self, site):
        plan = FaultPlan({"faults": [{"site": site, "kind": "error"}]})
        assert plan.rules[0].site == site

    def test_transport_kinds_parse(self):
        plan = FaultPlan({"faults": [
            {"site": "transport.send", "kind": kind}
            for kind in ("drop", "delay", "duplicate", "torn")
        ]})
        assert [r.kind for r in plan.rules] == [
            "drop", "delay", "duplicate", "torn",
        ]

    def test_malformed_env_plan_raises_loudly(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, "{not json")
        with pytest.raises(FaultPlanError):
            active_plan()

    def test_unreadable_file_raises(self, monkeypatch, tmp_path):
        monkeypatch.setenv(FAULT_PLAN_ENV, str(tmp_path / "absent.json"))
        with pytest.raises(FaultPlanError):
            active_plan()


class TestRuleSemantics:
    def test_site_and_match_scope_the_rule(self):
        plan = _plan([
            {"site": "worker.execute", "kind": "error", "match": "ab*"},
        ])
        assert plan.take("worker.execute", "cd99") is None
        assert plan.take("cache.entry.write", "ab12") is None
        assert plan.take("worker.execute", "ab12") is not None

    def test_budget_bounds_firings(self):
        plan = _plan([
            {"site": "s", "kind": "error", "times": 2},
        ])
        assert plan.take("s", "k") is not None
        assert plan.take("s", "k") is not None
        assert plan.take("s", "k") is None

    def test_null_budget_is_unlimited(self):
        plan = _plan([{"site": "s", "kind": "error", "times": None}])
        for _ in range(10):
            assert plan.take("s", "k") is not None

    def test_first_matching_rule_with_budget_wins(self):
        plan = _plan([
            {"site": "s", "kind": "error", "times": 1},
            {"site": "s", "kind": "torn", "times": 1},
        ])
        assert plan.take("s", "k").kind == "error"
        assert plan.take("s", "k").kind == "torn"
        assert plan.take("s", "k") is None

    def test_budget_holds_across_processes(self, tmp_path):
        """The exclusive-create markers make budgets global: two
        processes sharing a state dir claim two firings total, not two
        each."""
        state = tmp_path / "state"
        doc = json.dumps({
            "state_dir": str(state),
            "faults": [{"site": "s", "kind": "error", "times": 3}],
        })

        def claims(env_doc, out):
            plan = FaultPlan(json.loads(env_doc))
            out.put(sum(
                1 for _ in range(10) if plan.take("s", "k") is not None
            ))

        ctx = multiprocessing.get_context()
        out = ctx.Queue()
        procs = [
            ctx.Process(target=claims, args=(doc, out)) for _ in range(2)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=30)
        total = out.get(timeout=5) + out.get(timeout=5)
        assert total == 3


class TestMaybeFail:
    def test_error_kind_raises_injected_error(self, monkeypatch):
        _activate(monkeypatch, [{"site": "s", "kind": "error"}])
        with pytest.raises(InjectedError):
            maybe_fail("s", "key")

    def test_crash_kind_raises_outside_workers(self, monkeypatch):
        _activate(monkeypatch, [{"site": "s", "kind": "crash"}])
        assert not faults.IN_WORKER
        with pytest.raises(InjectedCrash):
            maybe_fail("s")

    def test_hard_crash_exits_with_marker_code(self, monkeypatch):
        """``hard: true`` crashes exit with CRASH_EXIT_CODE even
        outside a worker — the kill-the-process tests key on it."""
        _activate(monkeypatch, [
            {"site": "s", "kind": "crash", "hard": True},
        ])
        ctx = multiprocessing.get_context()

        proc = ctx.Process(target=maybe_fail, args=("s", "k"))
        proc.start()
        proc.join(timeout=30)
        assert proc.exitcode == CRASH_EXIT_CODE

    def test_torn_and_corrupt_are_returned_not_performed(
        self, monkeypatch
    ):
        _activate(monkeypatch, [
            {"site": "s", "kind": "torn", "times": 1},
            {"site": "s", "kind": "corrupt", "times": 1},
        ])
        assert maybe_fail("s").kind == "torn"
        assert maybe_fail("s").kind == "corrupt"
        assert maybe_fail("s") is None

    def test_hang_sleeps_then_returns_none(self, monkeypatch):
        _activate(monkeypatch, [
            {"site": "s", "kind": "hang", "seconds": 0.01},
        ])
        assert maybe_fail("s") is None

    def test_transport_kinds_are_returned_not_performed(
        self, monkeypatch
    ):
        """drop/delay/duplicate are message-level weather: the
        transport implements them, so maybe_fail just hands the rule
        back like torn/corrupt."""
        _activate(monkeypatch, [
            {"site": "s", "kind": "drop", "times": 1},
            {"site": "s", "kind": "delay", "seconds": 0.5, "times": 1},
            {"site": "s", "kind": "duplicate", "times": 1},
        ])
        assert maybe_fail("s").kind == "drop"
        rule = maybe_fail("s")
        assert rule.kind == "delay" and rule.seconds == 0.5
        assert maybe_fail("s").kind == "duplicate"
        assert maybe_fail("s") is None
