"""Unit tests for campaign specs and the planner (no simulation)."""

import json

import pytest

from repro.campaigns import (
    CampaignError,
    CampaignSpec,
    ExperimentSpec,
    builtin_campaigns,
    campaign_dir,
    get_campaign,
    plan_campaign,
)

TINY = dict(
    scale=0.05, flip_thresholds=[6_250], schemes=["mithril"],
    attack_seeds=[31],
)


def _spec(**params):
    merged = {**TINY, **params}
    return CampaignSpec(
        name="t",
        experiments=[ExperimentSpec(name="e1", kind="fig11",
                                    params=merged)],
    )


class TestSpec:
    def test_builtins_validate_and_cover_the_issue_set(self):
        campaigns = builtin_campaigns()
        assert {"smoke", "stress-panel", "paper-scale"} <= set(campaigns)
        for spec in campaigns.values():
            spec.validate()
        paper = campaigns["paper-scale"]
        assert {e.kind for e in paper.experiments} == {
            "fig7", "fig9", "fig10", "fig11"
        }
        assert all(
            e.params.get("scale") == 2.0 for e in paper.experiments
        )
        stress = campaigns["stress-panel"]
        for experiment in stress.experiments:
            assert len(experiment.params["extra_workloads"]) == 3

    def test_round_trips_via_dict(self):
        spec = builtin_campaigns()["stress-panel"]
        clone = CampaignSpec.from_dict(spec.to_dict())
        assert clone.to_dict() == spec.to_dict()

    def test_duplicate_experiment_names_rejected(self):
        spec = CampaignSpec(
            name="dup",
            experiments=[
                ExperimentSpec(name="same", kind="fig11"),
                ExperimentSpec(name="same", kind="fig9"),
            ],
        )
        with pytest.raises(CampaignError, match="duplicate"):
            spec.validate()

    def test_unknown_driver_rejected(self):
        spec = CampaignSpec(
            name="bad",
            experiments=[ExperimentSpec(name="x", kind="fig99")],
        )
        with pytest.raises(CampaignError, match="unknown"):
            spec.validate()

    def test_empty_campaign_rejected(self):
        with pytest.raises(CampaignError, match="no experiments"):
            CampaignSpec(name="empty").validate()

    def test_get_campaign_resolves_builtin_and_file(self, tmp_path):
        assert get_campaign("smoke").name == "smoke"
        path = tmp_path / "custom.json"
        path.write_text(json.dumps(_spec().to_dict()))
        loaded = get_campaign(str(path))
        assert loaded.name == "t"
        assert loaded.experiments[0].kind == "fig11"

    def test_get_campaign_unknown_is_a_campaign_error(self):
        with pytest.raises(CampaignError, match="unknown campaign"):
            get_campaign("no-such-campaign")

    def test_get_campaign_malformed_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(CampaignError, match="malformed"):
            get_campaign(str(path))

    def test_campaign_dir_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CAMPAIGN_DIR", str(tmp_path))
        assert campaign_dir() == tmp_path
        assert campaign_dir(str(tmp_path / "x")) == tmp_path / "x"


class TestPlanner:
    def test_plan_expands_with_provenance(self):
        spec = CampaignSpec(
            name="two",
            experiments=[
                ExperimentSpec(name="a", kind="fig11", params=dict(TINY)),
                ExperimentSpec(
                    name="b", kind="fig9",
                    params={"scale": 0.05, "sweep": [[6_250, 64]]},
                ),
            ],
        )
        plan = plan_campaign(spec)
        assert plan.requested_points > plan.total_points  # shared bases
        assert plan.shared_points >= 5  # the benign-suite baselines
        for job_hash, wanted in plan.wanted_by.items():
            assert wanted  # every job attributed
            assert job_hash in plan.jobs
        by_name = {e.name: e for e in plan.experiments}
        assert by_name["a"].points == 12
        assert by_name["b"].points == 15
        summary = plan.summary()
        assert summary["total_points"] == plan.total_points
        assert json.dumps(summary)  # JSON-serializable throughout

    def test_scale_override_rewrites_every_experiment(self):
        plan = plan_campaign(get_campaign("stress-panel"), scale=0.05)
        assert all(
            e.params["scale"] == 0.05 for e in plan.experiments
        )

    def test_unplannable_driver_is_a_campaign_error(self):
        spec = CampaignSpec(
            name="analytic",
            experiments=[ExperimentSpec(name="t4", kind="table4")],
        )
        with pytest.raises(CampaignError, match="plan_jobs"):
            plan_campaign(spec)

    def test_bad_params_surface_the_experiment_name(self):
        spec = _spec(no_such_param=1)
        with pytest.raises(CampaignError, match="e1"):
            plan_campaign(spec)

    def test_planning_never_simulates(self, monkeypatch):
        import repro.engine.executor as executor

        def boom(*_a, **_k):
            raise AssertionError("planning must not execute jobs")

        monkeypatch.setattr(executor, "execute_job", boom)
        monkeypatch.setattr(executor, "run_jobs", boom)
        plan = plan_campaign(get_campaign("smoke"))
        assert plan.total_points > 0
