"""Unit tests for the address mapper."""

import pytest

from repro.dram.address import AddressMapper
from repro.params import DramOrganization
from repro.types import BankAddress, RowAddress


class TestAddressMapper:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            AddressMapper(DramOrganization(channels=3))

    def test_capacity(self, organization):
        mapper = AddressMapper(organization)
        expected = 2 * 1 * 32 * 65536 * 8192
        assert mapper.capacity_bytes == expected

    def test_roundtrip(self, organization):
        mapper = AddressMapper(organization)
        row = RowAddress(BankAddress(channel=1, rank=0, bank=17), row=4097)
        address = mapper.encode(row, column=63)
        decoded = mapper.decode(address)
        assert decoded.row == row
        assert decoded.column == 63

    def test_consecutive_lines_stripe_channels_first(self, organization):
        mapper = AddressMapper(organization)
        first = mapper.decode(0)
        second = mapper.decode(64)
        assert first.row.bank.channel != second.row.bank.channel

    def test_rejects_out_of_range(self, organization):
        mapper = AddressMapper(organization)
        with pytest.raises(ValueError):
            mapper.decode(-1)
        with pytest.raises(ValueError):
            mapper.decode(mapper.capacity_bytes)
        with pytest.raises(ValueError):
            mapper.encode(RowAddress(BankAddress(0, 0, 0), 65536))
        with pytest.raises(ValueError):
            mapper.encode(RowAddress(BankAddress(0, 0, 0), 0), column=128)

    def test_flat_bank_index_unique(self, organization):
        mapper = AddressMapper(organization)
        banks = mapper.all_banks()
        indices = {mapper.flat_bank_index(b) for b in banks}
        assert len(indices) == organization.total_banks
        assert min(indices) == 0
        assert max(indices) == organization.total_banks - 1

    def test_decode_covers_all_banks(self, organization):
        mapper = AddressMapper(organization)
        seen = set()
        for line in range(256):
            decoded = mapper.decode(line * 64)
            seen.add(mapper.flat_bank_index(decoded.row.bank))
        assert len(seen) == organization.total_banks


class TestRowAddress:
    def test_neighbor(self):
        row = RowAddress(BankAddress(0, 0, 0), 100)
        assert row.neighbor(1, 65536).row == 101
        assert row.neighbor(-1, 65536).row == 99

    def test_neighbor_at_edge_is_none(self):
        row = RowAddress(BankAddress(0, 0, 0), 0)
        assert row.neighbor(-1, 65536) is None
        top = RowAddress(BankAddress(0, 0, 0), 65535)
        assert top.neighbor(1, 65536) is None
