"""Unit tests for the DDR5 RAA specification state (JESD79-5)."""

import pytest

from repro.mc.refresh_management import (
    Ddr5RaaState,
    Ddr5RfmPolicy,
    RfmAction,
)


class TestDdr5RaaState:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            Ddr5RaaState(raaimt=0)
        with pytest.raises(ValueError):
            Ddr5RaaState(raaimt=16, raammt_multiplier=0)

    def test_default_refresh_credit_is_half_raaimt(self):
        raa = Ddr5RaaState(raaimt=32)
        assert raa.raa_refresh_decrement == 16

    def test_rfm_due_at_raaimt(self):
        raa = Ddr5RaaState(raaimt=4)
        actions = [raa.on_activate() for _ in range(4)]
        assert actions[:3] == [RfmAction.NONE] * 3
        assert actions[3] == RfmAction.RFM_DUE

    def test_act_blocked_at_raammt(self):
        raa = Ddr5RaaState(raaimt=4, raammt_multiplier=2)
        for _ in range(8):
            raa.on_activate()
        assert not raa.can_activate()
        assert raa.on_activate() == RfmAction.ACT_BLOCKED
        assert raa.acts_blocked == 1
        assert raa.value == 8  # blocked ACT does not count

    def test_rfm_pays_down_one_raaimt(self):
        raa = Ddr5RaaState(raaimt=4)
        for _ in range(6):
            raa.on_activate()
        raa.on_rfm()
        assert raa.value == 2
        assert raa.rfm_issued == 1

    def test_refresh_credit(self):
        raa = Ddr5RaaState(raaimt=8, raa_refresh_decrement=3)
        for _ in range(5):
            raa.on_activate()
        raa.on_refresh()
        assert raa.value == 2

    def test_counters_never_negative(self):
        raa = Ddr5RaaState(raaimt=8)
        raa.on_refresh()
        raa.on_rfm()
        assert raa.value == 0


class TestDdr5RfmPolicy:
    def test_eager_policy_matches_paper_model(self):
        """With lazy_slots=0 the RFM rate is exactly one per RAAIMT."""
        policy = Ddr5RfmPolicy(Ddr5RaaState(raaimt=8))
        fired = sum(policy.on_activate() for _ in range(64))
        assert fired == 8

    def test_lazy_policy_defers_but_never_skips(self):
        policy = Ddr5RfmPolicy(Ddr5RaaState(raaimt=8), lazy_slots=3)
        fired = [policy.on_activate() for _ in range(16)]
        # reaches RAAIMT at ACT index 7, then burns 3 lazy slots
        assert fired.index(True) == 10
        assert sum(fired) >= 1

    def test_raammt_forces_immediate_rfm(self):
        raa = Ddr5RaaState(raaimt=4, raammt_multiplier=1)
        policy = Ddr5RfmPolicy(raa, lazy_slots=100)
        fired = [policy.on_activate() for _ in range(8)]
        assert any(fired[:5])  # forced long before the lazy window ends

    def test_refresh_can_cancel_pending_rfm(self):
        raa = Ddr5RaaState(raaimt=8, raa_refresh_decrement=8)
        policy = Ddr5RfmPolicy(raa, lazy_slots=10)
        for _ in range(8):
            policy.on_activate()
        policy.on_refresh()  # credit brings RAA below RAAIMT
        assert raa.value == 0
        assert not policy._rfm_pending

    def test_long_run_rfm_rate_bounded(self):
        """Over any long ACT run, RAA stays below RAAMMT and the RFM
        count is within one of acts/RAAIMT."""
        raa = Ddr5RaaState(raaimt=16, raammt_multiplier=2)
        policy = Ddr5RfmPolicy(raa, lazy_slots=5)
        acts = 1000
        for _ in range(acts):
            policy.on_activate()
            assert raa.value <= raa.raammt
        assert abs(raa.rfm_issued - acts // 16) <= 2
