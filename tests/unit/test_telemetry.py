"""Unit tests for the telemetry fabric.

Covers the instrumentation core (zero-cost-off gating, spans, metrics,
ring bounds, per-pid event streams), the cross-process merger's
torn-write tolerance and deterministic ordering, the Perfetto export +
validator, and the campaign progress follower.
"""

import json
import os

import pytest

from repro import telemetry
from repro.telemetry import (
    RING_CAPACITY,
    MetricsRegistry,
    Telemetry,
    event_files,
    merge_events,
    read_events,
    summarize_events,
    to_trace_events,
    validate_perfetto,
    write_perfetto,
)
from repro.telemetry.perfetto import export_perfetto


@pytest.fixture
def tel(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TELEMETRY", str(tmp_path / "tel"))
    telemetry.reset()
    yield telemetry.get()
    telemetry.reset()


@pytest.fixture
def off(monkeypatch):
    """Force-disable telemetry even when the outer environment (the
    telemetry-smoke CI lane) runs the suite with it on."""
    monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
    telemetry.reset()


class TestGating:
    def test_disabled_by_default(self, off):
        assert telemetry.get() is None
        assert not telemetry.enabled()

    def test_module_span_is_noop_when_off(self, off):
        span = telemetry.span("anything", key="value")
        assert span is telemetry.NOOP_SPAN
        with span:
            pass  # enter/exit must not raise

    def test_counter_and_event_are_noops_when_off(self, off):
        telemetry.counter("nope")
        telemetry.event("nope")  # nothing to assert: must not raise

    def test_enabled_via_env(self, tel, tmp_path):
        assert tel is not None
        assert tel.directory == tmp_path / "tel"
        assert telemetry.enabled()

    def test_get_rebuilds_on_directory_change(self, tel, monkeypatch,
                                              tmp_path):
        monkeypatch.setenv("REPRO_TELEMETRY", str(tmp_path / "other"))
        other = telemetry.get()
        assert other is not tel
        assert other.directory == tmp_path / "other"

    def test_get_drops_sink_when_env_cleared(self, tel, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY")
        assert telemetry.get() is None

    def test_fork_detection_rebuilds_for_new_pid(self, tel):
        # Simulate the post-fork state: the inherited sink carries the
        # parent's pid, so get() must mint a fresh per-process sink.
        tel.pid = tel.pid + 1
        telemetry._active = tel
        rebuilt = telemetry.get()
        assert rebuilt is not tel
        assert rebuilt.pid == os.getpid()


class TestCore:
    def test_span_records_duration_and_event(self, tel):
        with tel.span("phase.one", detail=7):
            pass
        assert tel.registry.timers["phase.one"] >= 0.0
        [record] = [r for r in tel.ring if r["kind"] == "span"]
        assert record["name"] == "phase.one"
        assert record["attrs"] == {"detail": 7}
        assert record["dur"] >= 0.0
        assert record["pid"] == os.getpid()

    def test_span_records_on_exception(self, tel):
        with pytest.raises(RuntimeError):
            with tel.span("fails"):
                raise RuntimeError("boom")
        assert "fails" in tel.registry.timers

    def test_counters_and_gauges(self, tel):
        tel.counter("hits")
        tel.counter("hits", 2)
        tel.gauge("depth", 0.5)
        snap = tel.registry.snapshot()
        assert snap["counters"]["hits"] == 3
        assert snap["gauges"]["depth"] == 0.5

    def test_events_are_durable_jsonl(self, tel):
        tel.event("thing.happened", value=1)
        lines = tel.events_path.read_text().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["kind"] == "thing.happened"
        assert record["value"] == 1
        assert record["seq"] == 1
        assert record["pid"] == os.getpid()

    def test_seq_is_monotonic(self, tel):
        for _ in range(5):
            tel.event("tick")
        seqs = [r["seq"] for r in tel.ring]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_ring_is_bounded(self, tel):
        for i in range(RING_CAPACITY + 10):
            tel.ring.append({"i": i})
        assert len(tel.ring) == RING_CAPACITY

    def test_set_role_stamps_once(self, tel):
        tel.set_role("supervisor")
        tel.set_role("supervisor")
        starts = [r for r in tel.ring if r["kind"] == "process.start"]
        assert len(starts) == 1
        assert starts[0]["role"] == "supervisor"

    def test_unwritable_directory_degrades_to_memory(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where the dir should go")
        sink = Telemetry(blocker / "sub")
        sink.event("still.works")  # must not raise
        assert sink.ring[-1]["kind"] == "still.works"

    def test_metrics_registry_standalone(self):
        registry = MetricsRegistry()
        registry.add_time("a", 0.25)
        registry.add_time("a", 0.25)
        assert registry.snapshot()["timers"]["a"] == 0.5


class TestMerger:
    def _write_stream(self, directory, pid, records):
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"events-{pid}.jsonl"
        with path.open("w") as fh:
            for record in records:
                fh.write(json.dumps(record) + "\n")
        return path

    def test_merges_out_of_order_files(self, tmp_path):
        # Worker files are each internally ordered, but interleave in
        # time; the merge must be globally (ts, pid, seq)-sorted.
        self._write_stream(tmp_path, 2, [
            {"ts": 2.0, "pid": 2, "seq": 1, "kind": "b"},
            {"ts": 4.0, "pid": 2, "seq": 2, "kind": "d"},
        ])
        self._write_stream(tmp_path, 1, [
            {"ts": 1.0, "pid": 1, "seq": 1, "kind": "a"},
            {"ts": 3.0, "pid": 1, "seq": 2, "kind": "c"},
        ])
        merged = merge_events(tmp_path)
        assert [r["kind"] for r in merged] == ["a", "b", "c", "d"]

    def test_torn_trailing_line_skipped(self, tmp_path):
        path = self._write_stream(tmp_path, 7, [
            {"ts": 1.0, "pid": 7, "seq": 1, "kind": "whole"},
        ])
        with path.open("a") as fh:
            fh.write('{"ts": 2.0, "pid": 7, "seq": 2, "kind": "to')
        merged = merge_events(tmp_path)
        assert [r["kind"] for r in merged] == ["whole"]
        assert list(read_events(path)) == merged

    def test_non_object_lines_skipped(self, tmp_path):
        path = self._write_stream(tmp_path, 7, [])
        path.write_text('[1, 2]\n"string"\n\n{"ts": 1, "pid": 7, '
                        '"seq": 1, "kind": "ok"}\n')
        assert [r["kind"] for r in read_events(path)] == ["ok"]

    def test_equal_timestamps_merge_deterministically(self, tmp_path):
        # Same ts everywhere: order must fall back to (pid, seq) and
        # be identical across repeated merges.
        self._write_stream(tmp_path, 9, [
            {"ts": 5.0, "pid": 9, "seq": 1, "kind": "p9s1"},
            {"ts": 5.0, "pid": 9, "seq": 2, "kind": "p9s2"},
        ])
        self._write_stream(tmp_path, 3, [
            {"ts": 5.0, "pid": 3, "seq": 1, "kind": "p3s1"},
        ])
        first = merge_events(tmp_path)
        assert [r["kind"] for r in first] == ["p3s1", "p9s1", "p9s2"]
        assert merge_events(tmp_path) == first

    def test_missing_directory_is_empty(self, tmp_path):
        assert merge_events(tmp_path / "never") == []
        assert event_files(tmp_path / "never") == []

    def test_summarize(self, tmp_path):
        self._write_stream(tmp_path, 1, [
            {"ts": 1.0, "pid": 1, "seq": 1, "kind": "span",
             "name": "work", "dur": 0.5},
            {"ts": 2.0, "pid": 1, "seq": 2, "kind": "job.ok"},
        ])
        summary = summarize_events(merge_events(tmp_path))
        assert summary["total"] == 2
        assert summary["kinds"] == {"span": 1, "job.ok": 1}
        assert summary["span_seconds"] == {"work": 0.5}
        assert summary["processes"] == [1]

    def test_slowest_spans_ranked_and_rebased(self, tmp_path):
        from repro.telemetry.events import slowest_spans

        self._write_stream(tmp_path, 1, [
            {"ts": 1.5, "pid": 1, "seq": 1, "kind": "span",
             "name": "fast", "start": 1.0, "dur": 0.5},
            {"ts": 4.0, "pid": 1, "seq": 2, "kind": "span",
             "name": "slow", "start": 2.0, "dur": 2.0,
             "attrs": {"job": "x"}},
            {"ts": 5.0, "pid": 1, "seq": 3, "kind": "job.ok"},
        ])
        top = slowest_spans(merge_events(tmp_path), limit=10)
        assert [t["name"] for t in top] == ["slow", "fast"]
        assert top[0]["dur"] == 2.0
        assert top[0]["start"] == 1.0  # rebased to the earliest start
        assert top[0]["attrs"] == {"job": "x"}
        assert len(slowest_spans(merge_events(tmp_path), limit=1)) == 1
        assert slowest_spans([], limit=3) == []


class TestInterleavedProbeStreams:
    """Probe seals land in the telemetry timeline and the merge stays
    deterministic when both fabrics write during the same run."""

    def _probed_traced_run(self, tmp_path, monkeypatch):
        from repro.params import SystemConfig
        from repro.sim.system import SimulatedSystem
        from repro.workloads.synthetic import random_access_trace

        monkeypatch.setenv("REPRO_PROBES", str(tmp_path / "probes"))
        monkeypatch.setenv("REPRO_PROBE_INTERVAL", "2000")
        config = SystemConfig().with_organization(
            channels=1, banks_per_rank=4
        )
        traces = [
            random_access_trace(num_requests=300, num_banks=4, seed=9)
        ]
        system = SimulatedSystem(traces, config=config)
        return system.run()

    def test_probe_seal_interleaves_with_telemetry_events(
            self, tel, tmp_path, monkeypatch):
        tel.event("run.begin")
        self._probed_traced_run(tmp_path, monkeypatch)
        tel.event("run.end")
        merged = merge_events(tel.directory)
        kinds = [r["kind"] for r in merged]
        assert kinds.index("run.begin") \
            < kinds.index("probes.sealed") < kinds.index("run.end")
        [seal] = [r for r in merged if r["kind"] == "probes.sealed"]
        assert seal["records"] > 0
        assert seal["samples"] > 0
        assert seal["path"].startswith("probes-")
        # the named stream is the one on disk, and it verified
        from repro.sim.probes import read_probe_stream

        _records, sealed = read_probe_stream(
            tmp_path / "probes" / seal["path"]
        )
        assert sealed
        # merge is deterministic across repeated reads
        assert merge_events(tel.directory) == merged

    def test_no_seal_event_when_telemetry_off(self, off, tmp_path,
                                              monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "")
        self._probed_traced_run(tmp_path, monkeypatch)
        from repro.sim.probes import probe_files

        assert len(probe_files(tmp_path / "probes")) == 1


class TestPerfetto:
    def test_span_becomes_complete_event(self):
        events = [
            {"ts": 10.5, "pid": 1, "seq": 1, "kind": "span",
             "name": "work", "start": 10.0, "dur": 0.5,
             "attrs": {"k": "v"}},
        ]
        [trace] = to_trace_events(events)
        assert trace["ph"] == "X"
        assert trace["name"] == "work"
        assert trace["ts"] == 0.0          # rebased to the span start
        assert trace["dur"] == 500_000.0   # 0.5 s in µs
        assert trace["pid"] == 1 and trace["tid"] == 1
        assert trace["args"]["k"] == "v"

    def test_explicit_tid_routes_to_worker_track(self):
        # The supervisor writes lease spans with tid=<worker pid>.
        events = [
            {"ts": 1.0, "pid": 10, "seq": 1, "kind": "span",
             "name": "lease", "start": 0.5, "dur": 0.5, "tid": 42},
        ]
        [trace] = to_trace_events(events)
        assert trace["pid"] == 10
        assert trace["tid"] == 42

    def test_role_stamp_becomes_process_name(self):
        events = [
            {"ts": 1.0, "pid": 5, "seq": 1, "kind": "process.start",
             "role": "worker"},
            {"ts": 2.0, "pid": 5, "seq": 2, "kind": "job.ok",
             "job": "abc"},
        ]
        traces = to_trace_events(events)
        meta = [t for t in traces if t["ph"] == "M"]
        assert meta[0]["args"]["name"] == "worker-5"
        instants = [t for t in traces if t["ph"] == "i"]
        assert instants[0]["name"] == "job.ok"
        assert instants[0]["args"]["job"] == "abc"

    def test_validator_passes_good_payload(self):
        payload = {"traceEvents": to_trace_events([
            {"ts": 1.0, "pid": 1, "seq": 1, "kind": "span",
             "name": "a", "start": 1.0, "dur": 0.1},
            {"ts": 2.0, "pid": 1, "seq": 2, "kind": "worker.crash"},
        ])}
        assert validate_perfetto(payload) == []

    def test_validator_rejects_malformed(self):
        assert validate_perfetto([]) == ["payload is not an object"]
        assert validate_perfetto({}) == ["traceEvents is not a list"]
        problems = validate_perfetto({"traceEvents": [
            {"ph": "Z", "name": "x", "pid": 1},
            {"ph": "X", "name": "", "pid": 1, "tid": 1,
             "ts": -5, "dur": 1},
            {"ph": "i", "name": "ok", "pid": "one", "tid": 1, "ts": 0},
        ]})
        assert len(problems) >= 3

    def test_write_and_validate_roundtrip(self, tel, tmp_path):
        with tel.span("real.work"):
            pass
        tel.event("worker.crash", tid=99, exit_code=23)
        output = tmp_path / "out" / "trace.json"
        count = write_perfetto(tel.directory, output)
        payload = json.loads(output.read_text())
        assert count == len(payload["traceEvents"]) == 2
        assert validate_perfetto(payload) == []
        assert payload["otherData"]["source"] == "repro-telemetry"

    def test_empty_directory_exports_empty(self, tmp_path):
        payload = export_perfetto(tmp_path)
        assert payload["traceEvents"] == []
        assert validate_perfetto(payload) == []


class TestProgress:
    def test_follow_formats_and_stops(self, tmp_path, monkeypatch):
        import io

        from repro.campaigns import get_campaign, plan_campaign
        from repro.campaigns.executor import CampaignManifest, manifest_path
        from repro.telemetry.progress import follow_campaign

        monkeypatch.setenv(
            "REPRO_CAMPAIGN_DIR", str(tmp_path / "campaigns")
        )
        plan = plan_campaign(get_campaign("smoke"), scale=0.05)
        manifest = CampaignManifest.for_plan(
            manifest_path("smoke"), plan
        )
        manifest.mark_completed(sorted(plan.jobs))
        manifest.refresh_status()
        manifest.save()
        out = io.StringIO()
        snap = follow_campaign(
            "smoke", interval=0.0, out=out, sleep=lambda _s: None
        )
        assert snap["done"] == plan.total_points
        assert snap["remaining"] == 0
        assert snap["quarantined"] == 0
        assert "100.0%" in out.getvalue()

    def test_follow_reports_missing_manifest(self, tmp_path, monkeypatch):
        import io

        from repro.telemetry.progress import follow_campaign

        monkeypatch.setenv(
            "REPRO_CAMPAIGN_DIR", str(tmp_path / "campaigns")
        )
        out = io.StringIO()
        snap = follow_campaign(
            "smoke", interval=0.0, ticks=2, out=out,
            sleep=lambda _s: None,
        )
        assert snap == {}
        assert "no manifest yet" in out.getvalue()

    def test_telemetry_counts_from_events(self, tmp_path):
        from repro.telemetry.progress import _telemetry_counts

        directory = tmp_path / "tel"
        directory.mkdir()
        records = [
            {"ts": 1.0, "pid": 1, "seq": 1, "kind": "lease.assign",
             "job": "aaa"},
            {"ts": 2.0, "pid": 1, "seq": 2, "kind": "lease.assign",
             "job": "bbb"},
            {"ts": 3.0, "pid": 2, "seq": 1, "kind": "job.ok",
             "job": "aaa"},
            {"ts": 4.0, "pid": 1, "seq": 3, "kind": "job.retry",
             "job": "bbb"},
            {"ts": 5.0, "pid": 1, "seq": 4, "kind": "worker.crash",
             "job": "bbb"},
        ]
        with (directory / "events-1.jsonl").open("w") as fh:
            for record in records:
                fh.write(json.dumps(record) + "\n")
        counts = _telemetry_counts(directory)
        assert counts["retried"] == 1
        assert counts["crashes"] == 1
        assert counts["inflight"] == 1  # bbb assigned, never finished
