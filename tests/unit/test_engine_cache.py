"""Unit tests for the on-disk result cache."""

from repro.engine import (
    ResultCache,
    SimJob,
    WorkloadSpec,
    code_version,
    default_cache_dir,
    result_from_dict,
    result_to_dict,
)
from repro.sim.metrics import SimulationResult
from repro.types import EnergyCounts


def _job():
    return SimJob(workload=WorkloadSpec.make("fft", seed=21, scale=0.1))


def _result():
    return SimulationResult(
        scheme_name="none",
        total_cycles=1234,
        per_core_instructions=[10, 20],
        per_core_finish_cycles=[1000, 1234],
        energy=EnergyCounts(acts=5, reads=7),
        acts=5,
        row_hits=3,
        row_misses=2,
    )


class TestSerialization:
    def test_round_trip(self):
        result = _result()
        assert result_from_dict(result_to_dict(result)) == result


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = _job()
        assert cache.get(job) is None
        cache.put(job, _result())
        assert cache.get(job) == _result()
        assert cache.entry_count() == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = _job()
        cache.put(job, _result())
        cache.path_for(job).write_text("{not json")
        assert cache.get(job) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_job(), _result())
        assert cache.clear() == 1
        assert cache.entry_count() == 0
        assert cache.get(_job()) is None

    def test_entries_record_the_job(self, tmp_path):
        import json

        cache = ResultCache(tmp_path)
        job = _job()
        cache.put(job, _result())
        record = json.loads(cache.path_for(job).read_text())
        assert record["job"] == job.canonical()

    def test_unwritable_cache_degrades_to_noop(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        cache = ResultCache(blocker / "cache")  # parent is a file
        cache.put(_job(), _result())  # must not raise
        assert cache.get(_job()) is None

    def test_distinct_jobs_do_not_collide(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = _job()
        other = SimJob(workload=_job().workload, flip_th=42)
        cache.put(job, _result())
        assert cache.get(other) is None


class TestGenerationGc:
    def _seed_generations(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_job(), _result())  # live generation
        dead = tmp_path / "00000000deadbeef"
        dead.mkdir()
        (dead / "a.json").write_text("{}")
        (dead / "b.json").write_text("{}")
        return cache, dead

    def test_versions_inventory(self, tmp_path):
        cache, _dead = self._seed_generations(tmp_path)
        versions = cache.versions()
        assert versions[code_version()] == 1
        assert versions["00000000deadbeef"] == 2

    def test_gc_removes_only_the_named_generation(self, tmp_path):
        cache, dead = self._seed_generations(tmp_path)
        assert cache.gc("00000000deadbeef") == 2
        assert not dead.exists()
        assert cache.entry_count() == 1  # live entry untouched
        assert cache.get(_job()) == _result()

    def test_gc_refuses_the_live_generation(self, tmp_path):
        cache, _dead = self._seed_generations(tmp_path)
        import pytest

        with pytest.raises(ValueError, match="live generation"):
            cache.gc(code_version())

    def test_gc_unknown_generation_is_a_noop(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.gc("not-a-generation") == 0

    def test_gc_rejects_path_escapes(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        precious = tmp_path / "precious.json"
        precious.write_text("{}")
        nested = tmp_path / "nested" / "deep"
        nested.mkdir(parents=True)
        (nested / "x.json").write_text("{}")
        cache = ResultCache(cache_dir)
        assert cache.gc("..") == 0
        assert cache.gc(str(tmp_path / "nested")) == 0
        assert cache.gc("../nested/deep") == 0
        assert precious.exists()
        assert (nested / "x.json").exists()
        assert tmp_path.is_dir()

    def test_gc_stale_sweeps_everything_dead(self, tmp_path):
        cache, dead = self._seed_generations(tmp_path)
        other = tmp_path / "1111111111111111"
        other.mkdir()
        (other / "c.json").write_text("{}")
        assert cache.gc_stale() == 3
        assert not dead.exists() and not other.exists()
        assert cache.entry_count() == 1


class TestCacheLocation:
    def test_env_var_overrides_default(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert default_cache_dir() == tmp_path
        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert "repro" in str(default_cache_dir())

    def test_code_version_is_stable(self):
        assert code_version() == code_version()
        assert len(code_version()) == 16
