"""Unit tests for the on-disk result cache."""

from repro.engine import (
    ResultCache,
    SimJob,
    WorkloadSpec,
    code_version,
    default_cache_dir,
    result_from_dict,
    result_to_dict,
)
from repro.sim.metrics import SimulationResult
from repro.types import EnergyCounts


def _job():
    return SimJob(workload=WorkloadSpec.make("fft", seed=21, scale=0.1))


def _result():
    return SimulationResult(
        scheme_name="none",
        total_cycles=1234,
        per_core_instructions=[10, 20],
        per_core_finish_cycles=[1000, 1234],
        energy=EnergyCounts(acts=5, reads=7),
        acts=5,
        row_hits=3,
        row_misses=2,
    )


class TestSerialization:
    def test_round_trip(self):
        result = _result()
        assert result_from_dict(result_to_dict(result)) == result


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = _job()
        assert cache.get(job) is None
        cache.put(job, _result())
        assert cache.get(job) == _result()
        assert cache.entry_count() == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = _job()
        cache.put(job, _result())
        cache.path_for(job).write_text("{not json")
        assert cache.get(job) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_job(), _result())
        assert cache.clear() == 1
        assert cache.entry_count() == 0
        assert cache.get(_job()) is None

    def test_entries_record_the_job(self, tmp_path):
        import json

        cache = ResultCache(tmp_path)
        job = _job()
        cache.put(job, _result())
        record = json.loads(cache.path_for(job).read_text())
        assert record["job"] == job.canonical()

    def test_unwritable_cache_degrades_to_noop(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        cache = ResultCache(blocker / "cache")  # parent is a file
        cache.put(_job(), _result())  # must not raise
        assert cache.get(_job()) is None

    def test_distinct_jobs_do_not_collide(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = _job()
        other = SimJob(workload=_job().workload, flip_th=42)
        cache.put(job, _result())
        assert cache.get(other) is None


class TestCacheLocation:
    def test_env_var_overrides_default(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert default_cache_dir() == tmp_path
        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert "repro" in str(default_cache_dir())

    def test_code_version_is_stable(self):
        assert code_version() == code_version()
        assert len(code_version()) == 16
