"""Unit tests for trace format and benign workload generators."""

import pytest

from repro.workloads.multithreaded import fft_like, pagerank_like, radix_like
from repro.workloads.spec_like import mix_blend, mix_high
from repro.workloads.synthetic import (
    random_access_trace,
    streaming_sweep_trace,
    strided_trace,
)
from repro.workloads.trace import CoreTrace, TraceEntry, merge_as_workload


class TestTraceFormat:
    def test_total_instructions(self):
        trace = CoreTrace(
            name="t",
            entries=[
                TraceEntry(gap_cycles=1, bank_index=0, row=0, instructions=5),
                TraceEntry(gap_cycles=2, bank_index=0, row=1, instructions=7),
            ],
        )
        assert trace.total_instructions == 12

    def test_banks_touched(self):
        trace = CoreTrace(
            name="t",
            entries=[
                TraceEntry(0, bank_index=3, row=0),
                TraceEntry(0, bank_index=1, row=0),
                TraceEntry(0, bank_index=3, row=1),
            ],
        )
        assert trace.banks_touched() == [1, 3]

    def test_save_load_roundtrip(self, tmp_path):
        trace = streaming_sweep_trace(num_requests=50, seed=9)
        path = tmp_path / "trace.jsonl"
        trace.save(path)
        loaded = CoreTrace.load(path)
        assert loaded.name == trace.name
        assert loaded.memory_intensive == trace.memory_intensive
        assert loaded.entries == trace.entries

    def test_merge_rejects_empty(self):
        with pytest.raises(ValueError):
            merge_as_workload([])


class TestSyntheticGenerators:
    def test_deterministic_with_seed(self):
        a = streaming_sweep_trace(num_requests=100, seed=5)
        b = streaming_sweep_trace(num_requests=100, seed=5)
        assert a.entries == b.entries

    def test_different_seeds_differ(self):
        a = random_access_trace(num_requests=100, seed=1)
        b = random_access_trace(num_requests=100, seed=2)
        assert a.entries != b.entries

    def test_sweep_has_row_locality(self):
        trace = streaming_sweep_trace(
            num_requests=320, accesses_per_row=16, mean_gap=0
        )
        # consecutive entries mostly share (bank, row)
        same = sum(
            1
            for a, b in zip(trace.entries, trace.entries[1:])
            if (a.bank_index, a.row) == (b.bank_index, b.row)
        )
        assert same / len(trace.entries) > 0.8

    def test_random_access_low_locality(self):
        trace = random_access_trace(num_requests=500, footprint_rows=65536)
        same = sum(
            1
            for a, b in zip(trace.entries, trace.entries[1:])
            if (a.bank_index, a.row) == (b.bank_index, b.row)
        )
        assert same / len(trace.entries) < 0.05

    def test_requests_within_bounds(self):
        for trace in (
            streaming_sweep_trace(num_requests=200, num_banks=8),
            random_access_trace(num_requests=200, num_banks=8),
            strided_trace(num_requests=200, num_banks=8),
        ):
            for entry in trace.entries:
                assert 0 <= entry.bank_index < 8
                assert 0 <= entry.row < 65536
                assert entry.gap_cycles >= 0
                assert entry.instructions >= 1

    def test_rejects_bad_accesses_per_row(self):
        with pytest.raises(ValueError):
            streaming_sweep_trace(accesses_per_row=0)


class TestMixes:
    def test_mix_high_all_intensive(self):
        traces = mix_high(num_cores=4, num_requests=50)
        assert len(traces) == 4
        assert all(t.memory_intensive for t in traces)

    def test_mix_blend_has_both(self):
        traces = mix_blend(num_cores=16, num_requests=50)
        intensities = [t.memory_intensive for t in traces]
        assert any(intensities) and not all(intensities)

    def test_mix_reproducible(self):
        a = mix_high(num_cores=4, num_requests=30, seed=3)
        b = mix_high(num_cores=4, num_requests=30, seed=3)
        assert [t.entries for t in a] == [t.entries for t in b]


class TestMultithreaded:
    def test_shapes(self):
        for maker in (fft_like, radix_like, pagerank_like):
            traces = maker(num_cores=4, num_requests=60, num_banks=8)
            assert len(traces) == 4
            assert all(len(t) == 60 for t in traces)

    def test_fft_partitions_disjoint_early(self):
        traces = fft_like(num_cores=4, num_requests=40,
                          footprint_rows=4096, num_banks=1)
        first_rows = {t.entries[0].row for t in traces}
        assert len(first_rows) == 4  # each thread starts in its partition

    def test_pagerank_shares_footprint(self):
        traces = pagerank_like(num_cores=2, num_requests=400,
                               footprint_rows=256, num_banks=1)
        rows_a = {e.row for e in traces[0].entries}
        rows_b = {e.row for e in traces[1].entries}
        assert rows_a & rows_b  # overlapping hot vertices
