"""Unit tests for the timing-sensitivity analysis."""

import pytest

from repro.analysis.sensitivity import (
    act_rate_sensitivity,
    refresh_window_sensitivity,
    rfm_window_sensitivity,
    sweep_parameter,
    table_size_kb,
)
from repro.params import DramTimings


class TestSensitivity:
    def test_longer_refresh_window_needs_bigger_table(self):
        """tREFW 64ms doubles the ACT budget per window: more entries."""
        rows = refresh_window_sensitivity()
        by_window = {row["value"]: row["n_entries"] for row in rows}
        assert by_window[16e6] < by_window[32e6] < by_window[64e6]

    def test_shorter_trfm_slightly_raises_w(self):
        rows = rfm_window_sensitivity()
        sizes = [row["n_entries"] for row in rows]
        # shorter tRFM -> more intervals fit -> weakly more entries
        assert sizes[0] >= sizes[2] - 1

    def test_faster_trc_needs_bigger_table(self):
        rows = act_rate_sensitivity()
        by_trc = {round(row["value"], 2): row["n_entries"] for row in rows}
        values = sorted(by_trc)
        assert by_trc[values[0]] >= by_trc[values[-1]]

    def test_sweep_rows_well_formed(self):
        rows = sweep_parameter("trefw", [32e6])
        assert rows[0]["table_kb"] is not None
        assert rows[0]["parameter"] == "trefw"

    def test_table_size_none_when_infeasible(self):
        assert table_size_kb(1_500, 256, DramTimings()) is None

    def test_default_matches_paper_config(self):
        kb = table_size_kb(6_250, 128, DramTimings())
        assert 0.5 < kb < 1.2
