"""Unit tests for the BENCH_SIM_SPEED.json controlled-pair guard."""

import json

import pytest

from repro.speed import (
    UncontrolledSpeedClaim,
    append_entry,
    controlled_pair_violation,
)


def _entry(label, preset="medium"):
    return {
        "label": label,
        "preset": preset,
        "rows": [],
        "total_events": 0,
        "total_wall_s": 0.0,
        "aggregate_events_per_sec": 0.0,
    }


def _record(*labels, preset="medium"):
    return {"entries": [_entry(label, preset) for label in labels]}


class TestViolationDetection:
    def test_uncontrolled_labels_always_pass(self):
        record = _record("whatever")
        for label in ("dev", "baseline", "optimized", "ci-smoke"):
            assert controlled_pair_violation(record, _entry(label)) is None

    def test_baseline_controlled_always_passes(self):
        assert controlled_pair_violation(
            _record(), _entry("baseline-controlled")
        ) is None
        assert controlled_pair_violation(
            _record("dev"), _entry("baseline-controlled")
        ) is None

    def test_back_to_back_pair_passes(self):
        record = _record("dev", "baseline-controlled")
        assert controlled_pair_violation(
            record, _entry("optimized-controlled")
        ) is None

    def test_claim_on_empty_trajectory_flagged(self):
        violation = controlled_pair_violation(
            _record(), _entry("optimized-controlled")
        )
        assert violation is not None and "empty" in violation

    def test_claim_after_uncontrolled_entry_flagged(self):
        violation = controlled_pair_violation(
            _record("baseline-controlled", "dev"),
            _entry("optimized-controlled"),
        )
        assert violation is not None and "back-to-back" in violation

    def test_preset_mismatch_flagged(self):
        violation = controlled_pair_violation(
            _record("baseline-controlled", preset="tiny"),
            _entry("optimized-controlled", preset="medium"),
        )
        assert violation is not None and "preset" in violation


class TestAppendGuard:
    def test_refuses_uncontrolled_claim(self, tmp_path):
        output = tmp_path / "speed.json"
        append_entry(_entry("dev"), output)
        with pytest.raises(UncontrolledSpeedClaim):
            append_entry(_entry("optimized-controlled"), output)
        # the refused entry was never written
        entries = json.loads(output.read_text())["entries"]
        assert [e["label"] for e in entries] == ["dev"]

    def test_allow_uncontrolled_downgrades_to_warning(self, tmp_path):
        output = tmp_path / "speed.json"
        append_entry(_entry("dev"), output)
        with pytest.warns(RuntimeWarning, match="uncontrolled"):
            append_entry(
                _entry("optimized-controlled"), output,
                allow_uncontrolled=True,
            )
        entries = json.loads(output.read_text())["entries"]
        assert entries[-1]["label"] == "optimized-controlled"

    def test_proper_pair_appends_silently(self, tmp_path):
        output = tmp_path / "speed.json"
        append_entry(_entry("baseline-controlled"), output)
        append_entry(_entry("optimized-controlled"), output)
        entries = json.loads(output.read_text())["entries"]
        assert [e["label"] for e in entries] == [
            "baseline-controlled", "optimized-controlled"
        ]

    def test_committed_trajectory_satisfies_the_guard(self):
        """The repo's own BENCH_SIM_SPEED.json replays cleanly."""
        from pathlib import Path

        trajectory = json.loads(
            (Path(__file__).resolve().parents[2]
             / "BENCH_SIM_SPEED.json").read_text()
        )
        replay = {"entries": []}
        for entry in trajectory["entries"]:
            assert controlled_pair_violation(replay, entry) is None, (
                f"committed entry {entry['label']!r} violates the "
                "controlled-pair rule"
            )
            replay["entries"].append(entry)


class TestCliGuard:
    def test_bench_speed_cli_refuses(self, tmp_path, monkeypatch, capsys):
        import repro.speed as speed
        from repro.cli import main

        monkeypatch.setattr(speed, "run_preset", lambda preset: [])
        output = tmp_path / "speed.json"
        assert main([
            "bench-speed", "--preset", "tiny",
            "--label", "optimized-controlled", "--output", str(output),
        ]) == 1
        assert "refusing to record" in capsys.readouterr().out
        assert not output.exists()

    def test_bench_speed_cli_allow_flag(self, tmp_path, monkeypatch,
                                        capsys):
        import repro.speed as speed
        from repro.cli import main

        monkeypatch.setattr(speed, "run_preset", lambda preset: [])
        output = tmp_path / "speed.json"
        with pytest.warns(RuntimeWarning):
            assert main([
                "bench-speed", "--preset", "tiny",
                "--label", "optimized-controlled",
                "--output", str(output), "--allow-uncontrolled",
            ]) == 0
        assert output.exists()
