"""Unit tests for the BENCH_SIM_SPEED.json controlled-pair guard."""

import json

import pytest

from repro.speed import (
    UncontrolledSpeedClaim,
    append_entry,
    controlled_pair_violation,
)


def _entry(label, preset="medium"):
    return {
        "label": label,
        "preset": preset,
        "rows": [],
        "total_events": 0,
        "total_wall_s": 0.0,
        "aggregate_events_per_sec": 0.0,
    }


def _record(*labels, preset="medium"):
    return {"entries": [_entry(label, preset) for label in labels]}


class TestViolationDetection:
    def test_uncontrolled_labels_always_pass(self):
        record = _record("whatever")
        for label in ("dev", "baseline", "optimized", "ci-smoke"):
            assert controlled_pair_violation(record, _entry(label)) is None

    def test_baseline_controlled_always_passes(self):
        assert controlled_pair_violation(
            _record(), _entry("baseline-controlled")
        ) is None
        assert controlled_pair_violation(
            _record("dev"), _entry("baseline-controlled")
        ) is None

    def test_back_to_back_pair_passes(self):
        record = _record("dev", "baseline-controlled")
        assert controlled_pair_violation(
            record, _entry("optimized-controlled")
        ) is None

    def test_claim_on_empty_trajectory_flagged(self):
        violation = controlled_pair_violation(
            _record(), _entry("optimized-controlled")
        )
        assert violation is not None and "empty" in violation

    def test_claim_after_uncontrolled_entry_flagged(self):
        violation = controlled_pair_violation(
            _record("baseline-controlled", "dev"),
            _entry("optimized-controlled"),
        )
        assert violation is not None and "back-to-back" in violation

    def test_preset_mismatch_flagged(self):
        violation = controlled_pair_violation(
            _record("baseline-controlled", preset="tiny"),
            _entry("optimized-controlled", preset="medium"),
        )
        assert violation is not None and "preset" in violation


class TestAppendGuard:
    def test_refuses_uncontrolled_claim(self, tmp_path):
        output = tmp_path / "speed.json"
        append_entry(_entry("dev"), output)
        with pytest.raises(UncontrolledSpeedClaim):
            append_entry(_entry("optimized-controlled"), output)
        # the refused entry was never written
        entries = json.loads(output.read_text())["entries"]
        assert [e["label"] for e in entries] == ["dev"]

    def test_allow_uncontrolled_downgrades_to_warning(self, tmp_path):
        output = tmp_path / "speed.json"
        append_entry(_entry("dev"), output)
        with pytest.warns(RuntimeWarning, match="uncontrolled"):
            append_entry(
                _entry("optimized-controlled"), output,
                allow_uncontrolled=True,
            )
        entries = json.loads(output.read_text())["entries"]
        assert entries[-1]["label"] == "optimized-controlled"

    def test_proper_pair_appends_silently(self, tmp_path):
        output = tmp_path / "speed.json"
        append_entry(_entry("baseline-controlled"), output)
        append_entry(_entry("optimized-controlled"), output)
        entries = json.loads(output.read_text())["entries"]
        assert [e["label"] for e in entries] == [
            "baseline-controlled", "optimized-controlled"
        ]

    def test_committed_trajectory_satisfies_the_guard(self):
        """The repo's own BENCH_SIM_SPEED.json replays cleanly."""
        from pathlib import Path

        trajectory = json.loads(
            (Path(__file__).resolve().parents[2]
             / "BENCH_SIM_SPEED.json").read_text()
        )
        replay = {"entries": []}
        for entry in trajectory["entries"]:
            assert controlled_pair_violation(replay, entry) is None, (
                f"committed entry {entry['label']!r} violates the "
                "controlled-pair rule"
            )
            replay["entries"].append(entry)


class TestCliGuard:
    def test_bench_speed_cli_refuses(self, tmp_path, monkeypatch, capsys):
        import repro.speed as speed
        from repro.cli import main

        monkeypatch.setattr(
            speed, "run_preset", lambda preset, backend=None: []
        )
        output = tmp_path / "speed.json"
        assert main([
            "bench-speed", "--preset", "tiny",
            "--label", "optimized-controlled", "--output", str(output),
        ]) == 1
        assert "refusing to record" in capsys.readouterr().out
        assert not output.exists()

    def test_bench_speed_cli_allow_flag(self, tmp_path, monkeypatch,
                                        capsys):
        import repro.speed as speed
        from repro.cli import main

        monkeypatch.setattr(
            speed, "run_preset", lambda preset, backend=None: []
        )
        output = tmp_path / "speed.json"
        with pytest.warns(RuntimeWarning):
            assert main([
                "bench-speed", "--preset", "tiny",
                "--label", "optimized-controlled",
                "--output", str(output), "--allow-uncontrolled",
            ]) == 0
        assert output.exists()


class TestPerWorkloadSpeedups:
    """The per-(workload, scheme) attribution attached to candidate
    entries alongside the aggregate speedup."""

    @staticmethod
    def _rows_entry(rows):
        entry = _entry("turbo-controlled")
        entry["rows"] = rows
        return entry

    @staticmethod
    def _row(workload, scheme, eps):
        return {
            "workload": workload, "scheme": scheme,
            "events_per_sec": eps,
        }

    def test_rows_matched_by_workload_and_scheme(self):
        from repro.speed import per_workload_speedups

        baseline = self._rows_entry([
            self._row("mix-high", "none", 100.0),
            self._row("mix-high", "mithril", 50.0),
        ])
        candidate = self._rows_entry([
            self._row("mix-high", "none", 250.0),
            self._row("mix-high", "mithril", 75.0),
        ])
        assert per_workload_speedups(baseline, candidate) == [
            {"workload": "mix-high", "scheme": "none", "speedup": 2.5},
            {"workload": "mix-high", "scheme": "mithril", "speedup": 1.5},
        ]

    def test_unmatched_and_zero_baseline_rows_skipped(self):
        from repro.speed import per_workload_speedups

        baseline = self._rows_entry([
            self._row("mix-high", "none", 100.0),
            self._row("fft", "graphene", 0.0),
        ])
        candidate = self._rows_entry([
            self._row("mix-high", "none", 120.0),
            self._row("fft", "graphene", 80.0),   # zero baseline
            self._row("radix", "mithril", 90.0),  # not in baseline
        ])
        assert per_workload_speedups(baseline, candidate) == [
            {"workload": "mix-high", "scheme": "none", "speedup": 1.2},
        ]

    def test_missing_rows_keys_are_harmless(self):
        from repro.speed import per_workload_speedups

        assert per_workload_speedups({}, {}) == []
        assert per_workload_speedups(
            {"rows": None}, self._rows_entry([self._row("a", "b", 1.0)])
        ) == []


class TestControlledPairsFlow:
    """The --pairs N median flow (this CPU's phase swings >2x)."""

    def _stub_run_preset(self, monkeypatch, walls):
        """run_preset returns one row; wall time scripted per call."""
        import repro.speed as speed

        calls = iter(walls)

        def fake(preset, backend=None):
            return [
                speed.SpeedRow(
                    scheme="none", workload="mix-high", events=1000,
                    wall_s=next(calls),
                )
            ]

        monkeypatch.setattr(speed, "run_preset", fake)

    def test_median_pair_recorded(self, tmp_path, monkeypatch):
        import json

        from repro.speed import run_controlled_pairs

        # pairs: (baseline, candidate) walls -> speedups 2.0, 4.0, 1.5
        self._stub_run_preset(
            monkeypatch, [1.0, 0.5, 1.0, 0.25, 0.9, 0.6]
        )
        output = tmp_path / "speed.json"
        report = run_controlled_pairs(
            "tiny", 3, "turbo-controlled", output=output
        )
        assert report["median_speedup"] == pytest.approx(2.0)
        assert report["samples"] == [1.5, 2.0, 4.0]
        record = json.loads(output.read_text())
        labels = [e["label"] for e in record["entries"]]
        assert labels == ["baseline-controlled", "turbo-controlled"]
        candidate = record["entries"][1]
        assert candidate["pairs_run"] == 3
        assert candidate["median_speedup"] == pytest.approx(2.0)
        assert candidate["speedup_samples"] == [1.5, 2.0, 4.0]
        from repro.sim.backend import numpy_available

        # annotated with what actually ran: without numpy the turbo
        # candidate honestly degrades to scalar
        assert candidate["backend"] == (
            "turbo" if numpy_available() else "scalar"
        )
        assert record["entries"][0]["backend"] == "scalar"
        # the recorded pair is the *median* measurement, not the best
        assert candidate["total_wall_s"] == pytest.approx(0.5)
        # per-workload attribution rides along with the aggregate
        assert candidate["per_workload_speedup"] == [
            {"workload": "mix-high", "scheme": "none", "speedup": 2.0}
        ]

    def test_label_must_claim_controlled(self, tmp_path):
        from repro.speed import run_controlled_pairs

        with pytest.raises(ValueError, match="-controlled"):
            run_controlled_pairs("tiny", 2, "turbo")

    def test_pairs_must_be_positive(self):
        from repro.speed import run_controlled_pairs

        with pytest.raises(ValueError, match="pairs"):
            run_controlled_pairs("tiny", 0, "turbo-controlled")

    def test_cli_pairs_flow(self, tmp_path, monkeypatch, capsys):
        import json

        from repro.cli import main

        self._stub_run_preset(monkeypatch, [1.0, 0.5, 1.0, 0.4])
        output = tmp_path / "speed.json"
        assert main([
            "bench-speed", "--preset", "tiny", "--pairs", "2",
            "--label", "turbo-controlled", "--output", str(output),
        ]) == 0
        record = json.loads(output.read_text())
        assert len(record["entries"]) == 2
        assert "median pair" in capsys.readouterr().out

    def test_cli_pairs_rejects_bad_label(self, tmp_path, capsys):
        from repro.cli import main

        assert main([
            "bench-speed", "--preset", "tiny", "--pairs", "2",
            "--label", "turbo", "--output", str(tmp_path / "s.json"),
        ]) == 1
        assert "refusing to record" in capsys.readouterr().out
