"""Unit tests for PARFM."""

import pytest

from repro.mitigations.parfm import ParfmScheme


class TestParfmScheme:
    def test_no_arr_on_activate(self):
        scheme = ParfmScheme()
        assert scheme.on_activate(5, 0) == []

    def test_rfm_refreshes_sample_victims(self):
        scheme = ParfmScheme(seed=1)
        scheme.on_activate(100, 0)
        victims = scheme.on_rfm(0)
        assert sorted(victims) == [99, 101]

    def test_rfm_with_no_acts_is_noop(self):
        scheme = ParfmScheme()
        assert scheme.on_rfm(0) == []

    def test_sample_resets_each_interval(self):
        scheme = ParfmScheme(seed=2)
        scheme.on_activate(100, 0)
        scheme.on_rfm(0)
        assert scheme.on_rfm(1) == []  # nothing sampled since

    def test_sample_is_uniform_over_interval(self):
        """Reservoir sampling: each of the R rows in an interval is
        selected with probability ~1/R."""
        import collections

        counts = collections.Counter()
        scheme = ParfmScheme(seed=3)
        rows = [10, 20, 30, 40]
        for _ in range(2000):
            for row in rows:
                scheme.on_activate(row, 0)
            victims = scheme.on_rfm(0)
            aggressor = victims[0] + 1
            counts[aggressor] += 1
        for row in rows:
            assert 350 < counts[row] < 650  # ~500 each

    def test_blast_radius(self):
        scheme = ParfmScheme(blast_radius=2, seed=4)
        scheme.on_activate(100, 0)
        assert sorted(scheme.on_rfm(0)) == [98, 99, 101, 102]

    def test_edge_clipping(self):
        scheme = ParfmScheme(rows_per_bank=64, seed=5)
        scheme.on_activate(0, 0)
        assert scheme.on_rfm(0) == [1]

    def test_uses_rfm_flag(self):
        assert ParfmScheme.uses_rfm
