"""Unit tests for the counter-based tree."""

import pytest

from repro.mitigations.cbt import CbtScheme


class TestCbtScheme:
    def test_starts_as_single_counter(self):
        scheme = CbtScheme(flip_th=1000, rows_per_bank=64)
        assert scheme.leaf_count == 1
        assert scheme.tree_depth == 1

    def test_splits_on_hot_subtree(self):
        scheme = CbtScheme(
            flip_th=64, rows_per_bank=64, num_counters=16
        )  # split at 8
        for _ in range(10):
            scheme.on_activate(5, 0)
        assert scheme.leaf_count > 1

    def test_split_inherits_count_conservatively(self):
        scheme = CbtScheme(flip_th=64, rows_per_bank=64, num_counters=4)
        for _ in range(8):
            scheme.on_activate(5, 0)
        root = scheme._root
        if not root.is_leaf:
            assert root.left.count >= 8 or root.right.count >= 8

    def test_counter_budget_respected(self):
        scheme = CbtScheme(flip_th=64, rows_per_bank=1024, num_counters=5)
        for row in range(0, 1024, 7):
            for _ in range(12):
                scheme.on_activate(row, 0)
        assert scheme._counters_used <= 5

    def test_refresh_covers_leaf_range_plus_neighbors(self):
        scheme = CbtScheme(flip_th=16, rows_per_bank=64, num_counters=1)
        victims = []
        for _ in range(4):  # refresh threshold = 4, no split budget
            victims = scheme.on_activate(32, 0)
        assert victims  # whole-bank leaf refresh
        assert victims[0] == 0 and victims[-1] == 63
        assert scheme.refreshed_rows_histogram[-1] == 64

    def test_drilled_down_leaf_refreshes_narrow_range(self):
        scheme = CbtScheme(flip_th=64, rows_per_bank=256, num_counters=64)
        victims = []
        for _ in range(40):
            new = scheme.on_activate(100, 0)
            if new:
                victims = new
                break
        assert victims
        assert len(victims) <= 4  # leaf drilled to small span

    def test_rejects_out_of_range_row(self):
        scheme = CbtScheme(flip_th=64, rows_per_bank=8)
        with pytest.raises(ValueError):
            scheme.on_activate(8, 0)

    def test_default_counter_budget_scales_with_flip_th(self):
        big = CbtScheme(flip_th=1_500)
        small = CbtScheme(flip_th=50_000)
        assert big.num_counters > small.num_counters
