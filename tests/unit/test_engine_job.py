"""Unit tests for the declarative job model (SimJob / WorkloadSpec)."""

import pytest

from repro.engine import SimJob, WorkloadSpec, build_config, freeze_params


class TestFreezeParams:
    def test_sorts_keys(self):
        assert freeze_params({"b": 2, "a": 1}) == (("a", 1), ("b", 2))

    def test_empty_and_none(self):
        assert freeze_params({}) == ()
        assert freeze_params(None) == ()

    def test_rejects_non_scalar_values(self):
        with pytest.raises(TypeError):
            freeze_params({"a": [1, 2]})
        with pytest.raises(TypeError):
            freeze_params({"a": {"nested": 1}})

    def test_rejects_non_str_keys(self):
        with pytest.raises(TypeError):
            freeze_params({1: "a"})


class TestWorkloadSpec:
    def test_make_freezes_params(self):
        spec = WorkloadSpec.make("fft", seed=21, scale=1.0)
        assert spec.kind == "fft"
        assert spec.as_dict() == {"seed": 21, "scale": 1.0}

    def test_hashable_and_order_independent(self):
        a = WorkloadSpec.make("fft", seed=21, scale=1.0)
        b = WorkloadSpec.make("fft", scale=1.0, seed=21)
        assert a == b
        assert hash(a) == hash(b)


class TestSimJob:
    def test_job_hash_is_stable_and_order_independent(self):
        spec = WorkloadSpec.make("fft", seed=21)
        a = SimJob.make(workload=spec, scheme="mithril",
                        scheme_params={"n_entries": 512, "rfm_th": 64})
        b = SimJob.make(workload=spec, scheme="mithril",
                        scheme_params={"rfm_th": 64, "n_entries": 512})
        assert a == b
        assert a.job_hash() == b.job_hash()
        assert len(a.job_hash()) == 24

    def test_job_hash_differs_on_any_knob(self):
        spec = WorkloadSpec.make("fft", seed=21)
        base = SimJob(workload=spec)
        assert base.job_hash() != SimJob(workload=spec, flip_th=1).job_hash()
        assert base.job_hash() != SimJob(workload=spec, mlp=8).job_hash()
        assert (
            base.job_hash()
            != SimJob(workload=WorkloadSpec.make("fft", seed=22)).job_hash()
        )

    def test_jobs_deduplicate_in_sets(self):
        spec = WorkloadSpec.make("radix", seed=22)
        assert len({SimJob(workload=spec), SimJob(workload=spec)}) == 1

    def test_canonical_is_json_shaped(self):
        import json

        job = SimJob.make(
            workload=WorkloadSpec.make("fft", seed=21),
            scheme="graphene",
            config_overrides={"scheduler": "frfcfs"},
            flip_th=3_125,
        )
        payload = json.dumps(job.canonical(), sort_keys=True)
        assert "graphene" in payload and "frfcfs" in payload


class TestSchemeFactoryFor:
    def test_explicit_params_derive_rfm_th_from_params(self):
        from repro.engine import scheme_factory_for

        job = SimJob.make(
            workload=WorkloadSpec.make("fft", seed=21),
            scheme="mithril",
            scheme_params={"n_entries": 512, "rfm_th": 64},
            flip_th=6_250,
        )
        factory, rfm_th = scheme_factory_for(job)
        assert rfm_th == 64  # from scheme_params, not silently 0
        assert factory().rfm_th == 64

    def test_job_rfm_th_overrides_scheme_params(self):
        from repro.engine import scheme_factory_for

        job = SimJob.make(
            workload=WorkloadSpec.make("fft", seed=21),
            scheme="mithril",
            scheme_params={"n_entries": 512, "rfm_th": 64},
            rfm_th=128,
        )
        _factory, rfm_th = scheme_factory_for(job)
        assert rfm_th == 128

    def test_paper_config_derives_rfm_th(self):
        from repro.engine import scheme_factory_for
        from repro.params import MITHRIL_DEFAULT_RFM_TH

        job = SimJob(
            workload=WorkloadSpec.make("fft", seed=21),
            scheme="mithril", flip_th=6_250,
        )
        _factory, rfm_th = scheme_factory_for(job)
        assert rfm_th == MITHRIL_DEFAULT_RFM_TH[6_250]


class TestJobPlan:
    def test_duplicate_key_raises(self):
        from repro.engine import JobPlan

        plan = JobPlan()
        job = SimJob(workload=WorkloadSpec.make("fft", seed=21))
        plan.add("a", job)
        with pytest.raises(ValueError):
            plan.add("a", job)
        assert len(plan) == 1


class TestBuildConfig:
    def test_empty_overrides_return_default(self):
        from repro.params import DEFAULT_CONFIG

        assert build_config(()) == DEFAULT_CONFIG

    def test_top_level_and_dotted_overrides(self):
        config = build_config(freeze_params({
            "scheduler": "frfcfs",
            "timings.trefw": 16e6,
            "organization.channels": 1,
        }))
        assert config.scheduler == "frfcfs"
        assert config.timings.trefw == 16e6
        assert config.organization.channels == 1

    def test_unknown_field_raises(self):
        with pytest.raises(TypeError):
            build_config(freeze_params({"no_such_field": 1}))
