"""Unit tests for the coordinator's scheduling/ingest state machine.

These drive :class:`repro.cluster.coordinator.Coordinator` directly —
no agent processes — pinning the invariants the integration chaos
tests rely on: idempotent result ingestion (late duplicates discarded
by hash), store verification before completion, lease-expiry
requeues, and the hello-does-not-requeue rule that keeps a persistent
spool inbox safe across agent restarts.
"""

import json
import time

import pytest

from repro.campaigns import CampaignSpec, ExperimentSpec, plan_campaign
from repro.campaigns.executor import CampaignManifest, manifest_path
from repro.cluster.coordinator import ClusterRunStats, Coordinator
from repro.cluster.transport import (
    COORDINATOR_MAILBOX,
    Message,
    SpoolTransport,
)
from repro.engine import SimJob, WorkloadSpec


def _tiny_spec():
    return CampaignSpec(
        name="unit-cluster",
        experiments=[
            ExperimentSpec(
                name="f11",
                kind="fig11",
                params=dict(
                    scale=0.05, flip_thresholds=[6_250],
                    schemes=["mithril"], attack_seeds=[31],
                ),
            )
        ],
    )


class FakeCache:
    """Stands in for ResultCache: verify() answers from a dict."""

    def __init__(self, verdicts=None):
        self.verdicts = dict(verdicts or {})

    def verify(self, job):
        return self.verdicts.get(job.job_hash(), "missing")


@pytest.fixture
def rig(tmp_path):
    plan = plan_campaign(_tiny_spec())
    manifest = CampaignManifest.for_plan(
        manifest_path("unit-cluster", tmp_path / "campaigns"), plan
    )
    cache = FakeCache()
    transport = SpoolTransport(tmp_path / "cluster", sender="coordinator")
    stats = ClusterRunStats(total_points=plan.total_points, hosts=1)
    coordinator = Coordinator(
        plan, manifest, cache, transport, stats,
        launcher=None, lease_timeout=1.0, chunk_size=4,
    )
    return coordinator


def _result(job_hash, host="1", status="ok", failure=None):
    payload = {"hash": job_hash, "host": host, "status": status}
    if failure is not None:
        payload["failure"] = failure
    return Message(type="result", sender=f"host-{host}", payload=payload)


class TestIngestIdempotency:
    def test_verified_ok_result_marks_complete_once(self, rig):
        job_hash = sorted(rig.plan.jobs)[0]
        rig.cache.verdicts[job_hash] = "ok"
        rig._ingest(_result(job_hash))
        assert job_hash in rig.completed
        assert job_hash in rig.manifest.completed
        assert rig._dirty == 1

    def test_duplicate_result_discarded_by_hash(self, rig):
        job_hash = sorted(rig.plan.jobs)[0]
        rig.cache.verdicts[job_hash] = "ok"
        rig._ingest(_result(job_hash, host="1"))
        # The late duplicate a healed partition delivers — possibly
        # from a different host that executed the reassigned chunk.
        rig._ingest(_result(job_hash, host="2"))
        rig._ingest(_result(job_hash, host="1"))
        assert rig.stats.duplicate_results == 2
        assert rig._dirty == 1  # only the first ingest counted

    def test_ok_result_without_store_entry_requeues(self, rig):
        job_hash = sorted(rig.plan.jobs)[0]
        rig._ingest(_result(job_hash))  # FakeCache says "missing"
        assert job_hash not in rig.completed
        assert job_hash in rig.pending
        assert rig.stats.reassigned == 1

    def test_failed_result_quarantines_with_diagnostics(self, rig):
        job_hash = sorted(rig.plan.jobs)[0]
        rig._ingest(_result(job_hash, status="failed", failure={
            "scheme": "mithril", "workload": "f11", "attempts": 3,
            "reason": "exception", "message": "boom",
        }))
        assert job_hash in rig.quarantined
        assert rig.stats.quarantined == 1
        record = rig.manifest.quarantined[job_hash]
        assert record["reason"] == "exception"
        assert record["attempts"] == 3

    def test_unknown_hash_is_ignored(self, rig):
        rig._ingest(_result("feedfacefeedfacefeedface"))
        assert rig.stats.duplicate_results == 0
        assert rig.pending == []


class TestHostLifecycle:
    def test_hello_does_not_requeue_outstanding_chunk(self, rig):
        # The spool inbox survives an agent restart: a fresh
        # incarnation still consumes the original assign message, so
        # requeueing on hello would double-execute the chunk.
        host = rig.add_host("1", spawn=False)
        job_hash = sorted(rig.plan.jobs)[0]
        host.assigned.add(job_hash)
        rig._ingest(Message(type="hello", sender="host-1",
                            payload={"host": "1", "pid": 123}))
        assert host.assigned == {job_hash}
        assert host.alive and host.pid == 123
        assert rig.pending == []
        assert rig.stats.reassigned == 0

    def test_lease_expiry_requeues_and_marks_dead(self, rig):
        host = rig.add_host("1", spawn=False)
        job_hash = sorted(rig.plan.jobs)[0]
        host.alive = True
        host.last_seen = time.time() - 10.0  # lease_timeout is 1.0
        host.assigned.add(job_hash)
        host.assigned_at = time.time()
        rig._check_hosts(time.time())
        assert not host.alive
        assert host.assigned == set()
        assert rig.pending == [job_hash]
        assert rig.stats.hosts_lost == 1
        assert rig.stats.reassigned == 1

    def test_heartbeat_renews_lease_and_rejoins(self, rig):
        host = rig.add_host("1", spawn=False)
        host.alive = False
        rig._ingest(Message(type="heartbeat", sender="host-1",
                            payload={"host": "1"}))
        assert host.alive
        assert time.time() - host.last_seen < 1.0

    def test_chunk_deadline_requeues_but_keeps_lease(self, rig):
        rig.chunk_timeout = 0.0
        host = rig.add_host("1", spawn=False)
        job_hash = sorted(rig.plan.jobs)[0]
        host.alive = True
        host.last_seen = time.time()
        host.assigned.add(job_hash)
        host.assigned_at = time.time() - 1.0
        rig._check_hosts(time.time())
        assert host.alive               # still heartbeating
        assert rig.pending == [job_hash]  # but the chunk came back


class TestAssignment:
    def test_one_outstanding_chunk_per_host(self, rig):
        host = rig.add_host("1", spawn=False)
        host.alive = True
        host.last_seen = time.time()
        rig.pending = sorted(rig.plan.jobs)
        rig._assign(time.time())
        assert len(host.assigned) == 4  # chunk_size
        assert rig.transport.pending_count(host.mailbox) == 1
        rig._assign(time.time())        # no second chunk while busy
        assert rig.transport.pending_count(host.mailbox) == 1
        [assign] = rig.transport.recv(host.mailbox)
        assert assign.type == "assign"
        hashes = [j["hash"] for j in assign.payload["jobs"]]
        assert set(hashes) == host.assigned

    def test_assign_skips_already_completed(self, rig):
        host = rig.add_host("1", spawn=False)
        host.alive = True
        host.last_seen = time.time()
        done = sorted(rig.plan.jobs)[0]
        rig.completed.add(done)
        rig.pending = sorted(rig.plan.jobs)
        rig._assign(time.time())
        assert done not in host.assigned

    def test_work_done_counts_quarantine(self, rig):
        assert not rig._work_done()
        hashes = sorted(rig.plan.jobs)
        rig.completed.update(hashes[1:])
        rig.quarantined.add(hashes[0])
        assert rig._work_done()


class TestCanonicalRoundtrip:
    """Assignment messages carry jobs as canonical dicts; the agent
    must rebuild a job whose hash matches the coordinator's exactly —
    a mismatch means the store would file results under the wrong
    key."""

    def test_plan_jobs_roundtrip_hash_equal(self, rig):
        for job_hash, job in rig.plan.jobs.items():
            clone = SimJob.from_canonical(job.canonical())
            assert clone == job
            assert clone.job_hash() == job_hash

    def test_roundtrip_survives_json_transport(self):
        job = SimJob.make(
            workload=WorkloadSpec.make("fft", seed=21, scale=0.25),
            scheme="mithril",
            scheme_params={"n_entries": 512, "rfm_th": 64},
            flip_th=6_250, mlp=8, track_hammer=False,
        )
        wire = json.loads(json.dumps(job.canonical()))
        clone = SimJob.from_canonical(wire)
        assert clone.job_hash() == job.job_hash()
        assert clone.scheme_params == job.scheme_params
        assert clone.mlp == 8 and clone.track_hammer is False
