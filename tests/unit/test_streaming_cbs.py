"""Unit tests for the Counter-based Summary (Space-Saving) algorithm."""

from collections import Counter

import pytest

from repro.streaming.cbs import CounterSummary


class TestBasicOperation:
    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            CounterSummary(capacity=0)

    def test_rejects_non_positive_count(self):
        summary = CounterSummary(capacity=4)
        with pytest.raises(ValueError):
            summary.observe("a", count=0)

    def test_single_element_exact(self):
        summary = CounterSummary(capacity=4)
        for _ in range(10):
            summary.observe("a")
        assert summary.estimate("a") == 10

    def test_on_table_elements_exact_when_no_eviction(self):
        summary = CounterSummary(capacity=4)
        stream = ["a", "b", "a", "c", "a", "b"]
        for item in stream:
            summary.observe(item)
        truth = Counter(stream)
        for element, count in truth.items():
            assert summary.estimate(element) == count

    def test_off_table_estimate_is_table_min(self):
        summary = CounterSummary(capacity=2)
        summary.observe("a", 5)
        summary.observe("b", 3)
        assert summary.estimate("zzz") == summary.min_count == 3

    def test_min_count_zero_while_not_full(self):
        summary = CounterSummary(capacity=4)
        summary.observe("a", 7)
        assert summary.min_count == 0
        assert summary.estimate("other") == 0

    def test_eviction_replaces_minimum(self):
        summary = CounterSummary(capacity=2)
        summary.observe("a", 5)
        summary.observe("b", 2)
        summary.observe("c")  # evicts b (min=2), c gets 3
        assert "b" not in summary
        assert "c" in summary
        assert summary.estimate("c") == 3

    def test_contains_and_len(self):
        summary = CounterSummary(capacity=3)
        for element in ("x", "y"):
            summary.observe(element)
        assert "x" in summary and "y" in summary
        assert "z" not in summary
        assert len(summary) == 2

    def test_total_observed(self):
        summary = CounterSummary(capacity=2)
        summary.observe("a", 4)
        summary.observe("b")
        assert summary.total_observed == 5


class TestMinMaxTracking:
    def test_max_entry(self):
        summary = CounterSummary(capacity=4)
        summary.observe("a", 3)
        summary.observe("b", 9)
        summary.observe("c", 5)
        assert summary.max_entry() == ("b", 9)

    def test_min_entry(self):
        summary = CounterSummary(capacity=3)
        summary.observe("a", 3)
        summary.observe("b", 9)
        summary.observe("c", 5)
        assert summary.min_entry() == ("a", 3)

    def test_empty_table(self):
        summary = CounterSummary(capacity=2)
        assert summary.max_entry() is None
        assert summary.min_entry() is None
        assert summary.min_count == 0

    def test_max_tracks_across_evictions(self):
        summary = CounterSummary(capacity=2)
        summary.observe("a", 2)
        summary.observe("b", 4)
        for _ in range(5):
            summary.observe("c")  # evicts a, becomes 3.. then grows
        element, count = summary.max_entry()
        assert element == "c"
        assert count == 7

    def test_min_advances_when_bucket_drains(self):
        summary = CounterSummary(capacity=2)
        summary.observe("a", 2)
        summary.observe("b", 2)
        summary.observe("a")  # min bucket (2) still holds b
        assert summary.min_count == 2
        summary.observe("b")  # bucket 2 empties -> min 3
        assert summary.min_count == 3


class TestDemoteToMin:
    def test_demote_sets_to_min(self):
        summary = CounterSummary(capacity=2)
        summary.observe("a", 9)
        summary.observe("b", 4)
        summary.demote_to_min("a")
        assert summary.estimate("a") == 4
        assert summary.max_entry()[1] == 4  # both entries now at the min

    def test_demote_when_not_full_goes_to_zero(self):
        summary = CounterSummary(capacity=4)
        summary.observe("a", 9)
        summary.demote_to_min("a")
        assert summary.estimate("a") == 0

    def test_demote_missing_raises(self):
        summary = CounterSummary(capacity=2)
        with pytest.raises(KeyError):
            summary.demote_to_min("ghost")

    def test_demote_of_min_is_noop(self):
        summary = CounterSummary(capacity=2)
        summary.observe("a", 5)
        summary.observe("b", 3)
        summary.demote_to_min("b")
        assert summary.estimate("b") == 3

    def test_repeated_demote_drains_table_max(self):
        summary = CounterSummary(capacity=3)
        summary.observe("a", 10)
        summary.observe("b", 8)
        summary.observe("c", 5)
        for _ in range(3):
            element, _ = summary.max_entry()
            summary.demote_to_min(element)
        # all counters equal the original minimum now
        assert summary.max_entry()[1] == 5
        assert summary.min_count == 5


class TestEntriesQueries:
    def test_entries_at_least(self):
        summary = CounterSummary(capacity=4)
        summary.observe("a", 10)
        summary.observe("b", 2)
        summary.observe("c", 7)
        hot = dict(summary.entries_at_least(7))
        assert hot == {"a": 10, "c": 7}

    def test_reset_clears_everything(self):
        summary = CounterSummary(capacity=2)
        summary.observe("a", 5)
        summary.reset()
        assert len(summary) == 0
        assert summary.max_entry() is None
        assert summary.min_count == 0
        summary.observe("b")
        assert summary.estimate("b") == 1
