"""Property tests: RetryPolicy backoff is a pure function of
(job hash, retry index).

The distributed fabric reassigns failed jobs to *different* hosts and
respawns crashed supervisors; if the jittered backoff schedule
depended on which process (or which call order) computes it, retry
timing would be irreproducible across those moves.  Determinism here
is what lets a fault-plan replay produce the same timeline twice.
"""

import hashlib

from repro.engine.supervisor import RetryPolicy


def _hashes(n):
    return [
        hashlib.sha256(f"job-{i}".encode()).hexdigest()[:24]
        for i in range(n)
    ]


class TestDeterminism:
    def test_same_hash_same_schedule_across_fresh_instances(self):
        # A respawned supervisor (or a different host retrying the
        # reassigned job) constructs its own policy object.
        for job_hash in _hashes(50):
            schedule_a = [RetryPolicy().delay(job_hash, r)
                          for r in range(1, 6)]
            schedule_b = [RetryPolicy().delay(job_hash, r)
                          for r in range(1, 6)]
            assert schedule_a == schedule_b

    def test_schedule_independent_of_call_order(self):
        policy = RetryPolicy()
        hashes = _hashes(20)
        forward = {h: [policy.delay(h, r) for r in (1, 2, 3)]
                   for h in hashes}
        fresh = RetryPolicy()
        for job_hash in reversed(hashes):
            for retry in (3, 2, 1):
                assert (fresh.delay(job_hash, retry)
                        == forward[job_hash][retry - 1])

    def test_jitter_varies_by_hash_not_by_time(self):
        policy = RetryPolicy()
        delays = {policy.delay(h, 1) for h in _hashes(50)}
        assert len(delays) > 1  # not in lockstep
        base = policy.backoff_base_s
        for delay in delays:
            assert base <= delay <= base * (1.0 + policy.jitter) + 1e-12


class TestShape:
    def test_exponential_until_cap(self):
        policy = RetryPolicy(backoff_base_s=0.1, backoff_cap_s=0.4,
                             jitter=0.0)
        [job_hash] = _hashes(1)
        delays = [policy.delay(job_hash, r) for r in (1, 2, 3, 4, 5)]
        assert delays == [0.1, 0.2, 0.4, 0.4, 0.4]

    def test_zero_base_means_no_sleep(self):
        policy = RetryPolicy(backoff_base_s=0.0)
        assert policy.delay("abc123", 1) == 0.0

    def test_short_or_empty_hash_does_not_crash(self):
        policy = RetryPolicy()
        assert policy.delay("", 1) >= policy.backoff_base_s
        assert policy.delay("ab", 1) >= policy.backoff_base_s
