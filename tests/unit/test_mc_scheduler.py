"""Unit tests for FR-FCFS and BLISS schedulers."""

import pytest

from repro.mc.scheduler import BlissScheduler, FrFcfsScheduler, make_scheduler
from repro.types import BankAddress, MemoryRequest, RowAddress


def _request(core: int, arrival: int, row: int) -> MemoryRequest:
    return MemoryRequest(
        core=core,
        arrival_cycle=arrival,
        address=RowAddress(BankAddress(0, 0, 0), row),
    )


def _no_throttle(request):
    return 0


class TestFrFcfs:
    def test_prefers_row_hit(self):
        scheduler = FrFcfsScheduler()
        queue = [_request(0, 0, 10), _request(1, 5, 20)]
        index = scheduler.pick(queue, open_row=20, cycle=100,
                               release_of=_no_throttle)
        assert index == 1

    def test_oldest_first_without_hits(self):
        scheduler = FrFcfsScheduler()
        queue = [_request(0, 50, 10), _request(1, 5, 20)]
        index = scheduler.pick(queue, open_row=None, cycle=100,
                               release_of=_no_throttle)
        assert index == 1

    def test_released_requests_beat_throttled(self):
        scheduler = FrFcfsScheduler()
        queue = [_request(0, 0, 10), _request(1, 5, 20)]

        def release(request):
            return 10_000 if request.address.row == 10 else 0

        index = scheduler.pick(queue, open_row=10, cycle=100,
                               release_of=release)
        assert index == 1  # row hit loses to throttle release

    def test_empty_queue(self):
        scheduler = FrFcfsScheduler()
        assert scheduler.pick([], None, 0, _no_throttle) is None

    def test_all_throttled_abstains(self):
        scheduler = FrFcfsScheduler()
        queue = [_request(0, 0, 10), _request(1, 5, 20)]
        index = scheduler.pick(queue, open_row=10, cycle=100,
                               release_of=lambda r: 10_000)
        assert index is None  # the event loop falls back by release


class TestBliss:
    def test_blacklists_after_streak(self):
        scheduler = BlissScheduler(blacklist_threshold=4)
        for _ in range(4):
            scheduler.on_served(core=7, cycle=100)
        assert scheduler._blacklisted(7, 101)

    def test_blacklist_expires(self):
        scheduler = BlissScheduler(blacklist_threshold=2, blacklist_cycles=50)
        scheduler.on_served(0, 10)
        scheduler.on_served(0, 10)
        assert scheduler._blacklisted(0, 20)
        assert not scheduler._blacklisted(0, 100)

    def test_alternating_cores_never_blacklisted(self):
        scheduler = BlissScheduler(blacklist_threshold=4)
        for i in range(20):
            scheduler.on_served(core=i % 2, cycle=i)
        assert not scheduler._blacklisted(0, 100)
        assert not scheduler._blacklisted(1, 100)

    def test_deprioritizes_blacklisted_core(self):
        scheduler = BlissScheduler(blacklist_threshold=1,
                                   blacklist_cycles=1000)
        scheduler.on_served(core=0, cycle=0)
        queue = [_request(0, 0, 10), _request(1, 50, 20)]
        index = scheduler.pick(queue, open_row=10, cycle=100,
                               release_of=_no_throttle)
        assert index == 1  # core 0 is blacklisted despite row hit + age

    def test_blacklisted_still_served_when_alone(self):
        scheduler = BlissScheduler(blacklist_threshold=1,
                                   blacklist_cycles=1000)
        scheduler.on_served(core=0, cycle=0)
        queue = [_request(0, 0, 10)]
        assert scheduler.pick(queue, None, 100, _no_throttle) == 0

    def test_all_throttled_abstains(self):
        scheduler = BlissScheduler()
        queue = [_request(0, 0, 10), _request(1, 5, 20)]
        index = scheduler.pick(queue, None, 100,
                               release_of=lambda r: 10_000)
        assert index is None


class TestFactory:
    def test_make_scheduler(self):
        assert isinstance(make_scheduler("bliss"), BlissScheduler)
        assert isinstance(make_scheduler("frfcfs"), FrFcfsScheduler)
        with pytest.raises(ValueError):
            make_scheduler("magic")
