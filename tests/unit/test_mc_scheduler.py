"""Unit tests for FR-FCFS and BLISS schedulers."""

import pytest

from repro.mc.scheduler import BlissScheduler, FrFcfsScheduler, make_scheduler
from repro.types import BankAddress, MemoryRequest, RowAddress


def _request(core: int, arrival: int, row: int) -> MemoryRequest:
    return MemoryRequest(
        core=core,
        arrival_cycle=arrival,
        address=RowAddress(BankAddress(0, 0, 0), row),
    )


def _no_throttle(request):
    return 0


class TestFrFcfs:
    def test_prefers_row_hit(self):
        scheduler = FrFcfsScheduler()
        queue = [_request(0, 0, 10), _request(1, 5, 20)]
        index = scheduler.pick(queue, open_row=20, cycle=100,
                               release_of=_no_throttle)
        assert index == 1

    def test_oldest_first_without_hits(self):
        scheduler = FrFcfsScheduler()
        queue = [_request(0, 50, 10), _request(1, 5, 20)]
        index = scheduler.pick(queue, open_row=None, cycle=100,
                               release_of=_no_throttle)
        assert index == 1

    def test_released_requests_beat_throttled(self):
        scheduler = FrFcfsScheduler()
        queue = [_request(0, 0, 10), _request(1, 5, 20)]

        def release(request):
            return 10_000 if request.address.row == 10 else 0

        index = scheduler.pick(queue, open_row=10, cycle=100,
                               release_of=release)
        assert index == 1  # row hit loses to throttle release

    def test_empty_queue(self):
        scheduler = FrFcfsScheduler()
        assert scheduler.pick([], None, 0, _no_throttle) is None

    def test_all_throttled_abstains(self):
        scheduler = FrFcfsScheduler()
        queue = [_request(0, 0, 10), _request(1, 5, 20)]
        index = scheduler.pick(queue, open_row=10, cycle=100,
                               release_of=lambda r: 10_000)
        assert index is None  # the event loop falls back by release

    def test_equal_arrival_ties_keep_lowest_index(self):
        """FR-FCFS tie-break: same arrival cycle => first queued wins."""
        scheduler = FrFcfsScheduler()
        queue = [_request(0, 7, 10), _request(1, 7, 20), _request(2, 7, 30)]
        assert scheduler.pick(queue, None, 100, _no_throttle) == 0
        # A row hit still beats older same-arrival misses...
        assert scheduler.pick(queue, 20, 100, _no_throttle) == 1
        # ...and two same-arrival hits keep the lowest index.
        queue.append(_request(3, 7, 20))
        assert scheduler.pick(queue, 20, 100, _no_throttle) == 1

    def test_none_release_means_everything_released(self):
        """The event loop passes release_of=None for no-throttle schemes."""
        scheduler = FrFcfsScheduler()
        queue = [_request(0, 50, 10), _request(1, 5, 20)]
        assert scheduler.pick(queue, None, 100, release_of=None) == 1
        assert scheduler.pick([], None, 0, release_of=None) is None


class TestBliss:
    def test_blacklists_after_streak(self):
        scheduler = BlissScheduler(blacklist_threshold=4)
        for _ in range(4):
            scheduler.on_served(core=7, cycle=100)
        assert scheduler._blacklisted(7, 101)

    def test_blacklist_expires(self):
        scheduler = BlissScheduler(blacklist_threshold=2, blacklist_cycles=50)
        scheduler.on_served(0, 10)
        scheduler.on_served(0, 10)
        assert scheduler._blacklisted(0, 20)
        assert not scheduler._blacklisted(0, 100)

    def test_alternating_cores_never_blacklisted(self):
        scheduler = BlissScheduler(blacklist_threshold=4)
        for i in range(20):
            scheduler.on_served(core=i % 2, cycle=i)
        assert not scheduler._blacklisted(0, 100)
        assert not scheduler._blacklisted(1, 100)

    def test_deprioritizes_blacklisted_core(self):
        scheduler = BlissScheduler(blacklist_threshold=1,
                                   blacklist_cycles=1000)
        scheduler.on_served(core=0, cycle=0)
        queue = [_request(0, 0, 10), _request(1, 50, 20)]
        index = scheduler.pick(queue, open_row=10, cycle=100,
                               release_of=_no_throttle)
        assert index == 1  # core 0 is blacklisted despite row hit + age

    def test_blacklisted_still_served_when_alone(self):
        scheduler = BlissScheduler(blacklist_threshold=1,
                                   blacklist_cycles=1000)
        scheduler.on_served(core=0, cycle=0)
        queue = [_request(0, 0, 10)]
        assert scheduler.pick(queue, None, 100, _no_throttle) == 0

    def test_all_throttled_abstains(self):
        scheduler = BlissScheduler()
        queue = [_request(0, 0, 10), _request(1, 5, 20)]
        index = scheduler.pick(queue, None, 100,
                               release_of=lambda r: 10_000)
        assert index is None

    def test_uncontended_serves_do_not_build_streak(self):
        """A core alone in its queue must never blacklist itself."""
        scheduler = BlissScheduler(blacklist_threshold=4)
        for i in range(20):
            scheduler.on_served(core=0, cycle=i, contended=False)
        assert not scheduler._blacklisted(0, 100)

    def test_uncontended_serves_do_not_reset_streak(self):
        """Uncontended serves are invisible: the streak neither grows
        nor restarts, so contention straddling an idle phase still
        blacklists."""
        scheduler = BlissScheduler(blacklist_threshold=4)
        scheduler.on_served(core=0, cycle=0)
        scheduler.on_served(core=0, cycle=1)
        for i in range(10):
            scheduler.on_served(core=0, cycle=2 + i, contended=False)
        scheduler.on_served(core=0, cycle=20)
        scheduler.on_served(core=0, cycle=21)
        assert scheduler._blacklisted(0, 30)

    def test_contended_interleaving_switches_streak_owner(self):
        scheduler = BlissScheduler(blacklist_threshold=3)
        scheduler.on_served(core=0, cycle=0)
        scheduler.on_served(core=0, cycle=1)
        scheduler.on_served(core=1, cycle=2)  # streak owner switches
        scheduler.on_served(core=0, cycle=3)
        scheduler.on_served(core=0, cycle=4)
        assert not scheduler._blacklisted(0, 10)
        scheduler.on_served(core=0, cycle=5)  # third consecutive
        assert scheduler._blacklisted(0, 10)

    def test_none_release_means_everything_released(self):
        scheduler = BlissScheduler(blacklist_threshold=1,
                                   blacklist_cycles=1000)
        scheduler.on_served(core=0, cycle=0)
        queue = [_request(0, 0, 10), _request(1, 50, 20)]
        assert scheduler.pick(queue, 10, 100, release_of=None) == 1


class TestFactory:
    def test_make_scheduler(self):
        assert isinstance(make_scheduler("bliss"), BlissScheduler)
        assert isinstance(make_scheduler("frfcfs"), FrFcfsScheduler)
        with pytest.raises(ValueError):
            make_scheduler("magic")
