"""Multi-host telemetry: per-host subdirectory streams stay distinct.

Distributed campaigns run agents on hosts whose OS pids can collide
(two boxes both spawn pid 4711).  Host agents therefore write their
event streams into ``<dir>/host-<id>/`` subdirectories; the merger
folds the subdirectory name into every record as ``host`` and keys
the global order on ``(ts, host, pid, seq)``, and the Perfetto export
routes each ``(host, pid)`` pair onto its own synthetic process track
— so the trace never interleaves two different machines' pid-4711
processes on one timeline row.
"""

import json

from repro.telemetry.events import (
    event_files,
    merge_events,
    summarize_events,
)
from repro.telemetry.perfetto import (
    _HOST_PID_BASE,
    to_trace_events,
    validate_perfetto,
)


def _write_stream(directory, pid, records):
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"events-{pid}.jsonl"
    with path.open("w") as fh:
        for record in records:
            fh.write(json.dumps(record) + "\n")
    return path


def _colliding_pid_dir(tmp_path):
    """Same pid (4711) active on two hosts, plus a coordinator stream
    at the top level."""
    _write_stream(tmp_path, 100, [
        {"ts": 0.5, "pid": 100, "seq": 1, "kind": "process.start",
         "role": "coordinator"},
    ])
    _write_stream(tmp_path / "host-1", 4711, [
        {"ts": 1.0, "pid": 4711, "seq": 1, "kind": "process.start",
         "role": "agent"},
        {"ts": 2.0, "pid": 4711, "seq": 2, "kind": "job.ok",
         "job": "aaa"},
    ])
    _write_stream(tmp_path / "host-2", 4711, [
        {"ts": 1.5, "pid": 4711, "seq": 1, "kind": "process.start",
         "role": "agent"},
        {"ts": 2.5, "pid": 4711, "seq": 2, "kind": "job.ok",
         "job": "bbb"},
    ])
    return tmp_path


class TestMergerAcrossHosts:
    def test_subdir_streams_found_and_host_folded(self, tmp_path):
        _colliding_pid_dir(tmp_path)
        files = event_files(tmp_path)
        assert len(files) == 3
        assert files[0].parent == tmp_path  # top-level first
        merged = merge_events(tmp_path)
        hosts = [r.get("host") for r in merged]
        assert hosts.count("host-1") == 2
        assert hosts.count("host-2") == 2
        assert hosts.count(None) == 1  # coordinator untouched

    def test_pid_collision_keeps_records_distinct_and_ordered(
        self, tmp_path
    ):
        _colliding_pid_dir(tmp_path)
        merged = merge_events(tmp_path)
        assert [r.get("job") for r in merged if r["kind"] == "job.ok"] \
            == ["aaa", "bbb"]
        # same (ts, pid, seq) on both hosts must not tie-break
        # nondeterministically: host is part of the merge key
        _write_stream(tmp_path / "host-1", 9, [
            {"ts": 5.0, "pid": 9, "seq": 1, "kind": "tie"},
        ])
        _write_stream(tmp_path / "host-2", 9, [
            {"ts": 5.0, "pid": 9, "seq": 1, "kind": "tie"},
        ])
        first = merge_events(tmp_path)
        ties = [r for r in first if r["kind"] == "tie"]
        assert [t["host"] for t in ties] == ["host-1", "host-2"]
        assert merge_events(tmp_path) == first

    def test_summary_lists_hosts(self, tmp_path):
        _colliding_pid_dir(tmp_path)
        summary = summarize_events(merge_events(tmp_path))
        assert summary["hosts"] == ["host-1", "host-2"]
        assert summary["total"] == 5

    def test_explicit_host_field_wins_over_subdir(self, tmp_path):
        # A record that already carries host (e.g. coordinator events
        # about a host) keeps it; the folding is only a default.
        _write_stream(tmp_path / "host-1", 7, [
            {"ts": 1.0, "pid": 7, "seq": 1, "kind": "x",
             "host": "host-9"},
        ])
        [record] = merge_events(tmp_path)
        assert record["host"] == "host-9"


class TestPerfettoAcrossHosts:
    def test_colliding_pids_get_distinct_tracks(self, tmp_path):
        merged = merge_events(_colliding_pid_dir(tmp_path))
        traces = to_trace_events(merged)
        meta = {t["args"]["name"]: t["pid"]
                for t in traces if t["ph"] == "M"
                and t.get("name") == "process_name"}
        assert "agent@host-1-4711" in meta
        assert "agent@host-2-4711" in meta
        assert meta["agent@host-1-4711"] != meta["agent@host-2-4711"]
        assert meta["agent@host-1-4711"] >= _HOST_PID_BASE
        # hostless coordinator keeps its raw pid
        assert meta["coordinator-100"] == 100
        validate_perfetto({"traceEvents": traces})

    def test_host_routing_is_deterministic(self, tmp_path):
        merged = merge_events(_colliding_pid_dir(tmp_path))
        first = to_trace_events(merged)
        assert to_trace_events(merged) == first

    def test_instants_follow_their_host_track(self, tmp_path):
        merged = merge_events(_colliding_pid_dir(tmp_path))
        traces = to_trace_events(merged)
        instants = [t for t in traces if t["ph"] == "i"]
        pids = {t["args"].get("host"): t["pid"] for t in instants}
        assert pids["host-1"] != pids["host-2"]
        assert all(p >= _HOST_PID_BASE for p in pids.values())
