"""Unit tests for the RAA counter and RFM issue logic (Figure 1)."""

import pytest

from repro.mc.rfm import RaaCounter, RfmIssueLogic


class TestRaaCounter:
    def test_threshold_reached(self):
        raa = RaaCounter(rfm_th=4)
        assert [raa.on_activate() for _ in range(4)] == [
            False, False, False, True,
        ]

    def test_reset(self):
        raa = RaaCounter(rfm_th=4)
        for _ in range(3):
            raa.on_activate()
        raa.reset()
        assert raa.value == 0
        assert not raa.on_activate()

    def test_zero_threshold_never_fires(self):
        raa = RaaCounter(rfm_th=0)
        assert not raa.on_activate()

    def test_decay_floors_at_zero(self):
        raa = RaaCounter(rfm_th=10)
        raa.on_activate()
        raa.decay(5)
        assert raa.value == 0


class TestRfmIssueLogic:
    def test_issues_every_rfm_th_acts(self):
        logic = RfmIssueLogic(rfm_th=8)
        fired = sum(logic.on_activate() for _ in range(64))
        assert fired == 8
        assert logic.rfm_issued == 8

    def test_counter_resets_after_issue(self):
        logic = RfmIssueLogic(rfm_th=4)
        for _ in range(4):
            logic.on_activate()
        assert logic.raa.value == 0

    def test_mrr_gate_skips_when_flag_clear(self):
        logic = RfmIssueLogic(rfm_th=4, mrr_gated=True)
        fired = sum(
            logic.on_activate(flag_reader=lambda: False) for _ in range(16)
        )
        assert fired == 0
        assert logic.rfm_elided == 4
        assert logic.mrr_reads == 4

    def test_mrr_gate_issues_when_flag_set(self):
        logic = RfmIssueLogic(rfm_th=4, mrr_gated=True)
        fired = sum(
            logic.on_activate(flag_reader=lambda: True) for _ in range(16)
        )
        assert fired == 4
        assert logic.rfm_elided == 0

    def test_ungated_ignores_flag(self):
        logic = RfmIssueLogic(rfm_th=4, mrr_gated=False)
        fired = sum(
            logic.on_activate(flag_reader=lambda: False) for _ in range(8)
        )
        assert fired == 2
        assert logic.mrr_reads == 0

    def test_raa_resets_even_when_elided(self):
        """The MC resets its RAA counter whether or not the RFM goes out."""
        logic = RfmIssueLogic(rfm_th=4, mrr_gated=True)
        for _ in range(4):
            logic.on_activate(flag_reader=lambda: False)
        assert logic.raa.value == 0
