"""Unit tests for the trace-driven core model."""

import pytest

from repro.sim.core import TraceCore
from repro.workloads.trace import CoreTrace, TraceEntry


def _trace(entries):
    return CoreTrace(name="t", entries=entries)


class TestTraceCore:
    def test_issue_consumes_entries(self):
        core = TraceCore(
            0, _trace([TraceEntry(0, 0, 1), TraceEntry(5, 0, 2)])
        )
        entry = core.issue(0)
        assert entry.row == 1
        assert core.index == 1
        assert not core.done_issuing()

    def test_gap_delays_next_issue(self):
        core = TraceCore(
            0, _trace([TraceEntry(0, 0, 1), TraceEntry(10, 0, 2)])
        )
        core.issue(0)
        assert core.next_issue_cycle == 10

    def test_mlp_tracks_outstanding_reads(self):
        entries = [TraceEntry(0, 0, i) for i in range(4)]
        core = TraceCore(0, _trace(entries), mlp=2)
        core.issue(0)
        core.issue(1)
        assert core.outstanding_reads == 2
        assert core.outstanding_reads >= core.mlp  # event loop stalls here
        core.on_read_complete(20)
        assert core.outstanding_reads == 1
        assert core.outstanding_reads < core.mlp

    def test_writes_never_add_outstanding_reads(self):
        entries = [TraceEntry(0, 0, i, is_write=True) for i in range(5)]
        core = TraceCore(0, _trace(entries), mlp=1)
        for _ in range(5):
            core.issue(core.next_issue_cycle)
        assert core.outstanding_reads == 0
        assert core.writes_issued == 5

    def test_done_issuing(self):
        core = TraceCore(0, _trace([TraceEntry(0, 0, 1)]))
        core.issue(0)
        assert core.done_issuing()

    def test_completion_underflow_raises(self):
        core = TraceCore(0, _trace([TraceEntry(0, 0, 1)]))
        with pytest.raises(RuntimeError):
            core.on_read_complete(0)

    def test_total_instructions(self):
        core = TraceCore(
            0,
            _trace([
                TraceEntry(0, 0, 1, instructions=10),
                TraceEntry(0, 0, 2, instructions=20),
            ]),
        )
        assert core.total_instructions == 30
