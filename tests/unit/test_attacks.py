"""Unit tests for the attack trace generators."""

import pytest

from repro.workloads.attacks import (
    blockhammer_adversarial_trace,
    double_sided_trace,
    find_aliasing_rows,
    find_covering_rows,
    multi_sided_trace,
    rotation_attack_trace,
)
from repro.streaming.counting_bloom import CountingBloomFilter


class TestDoubleSided:
    def test_alternates_neighbors(self):
        trace = double_sided_trace(victim_row=100, total_requests=6)
        rows = [e.row for e in trace.entries]
        assert rows == [99, 101, 99, 101, 99, 101]

    def test_every_access_misses(self):
        """Alternating rows defeats the row buffer: all ACTs."""
        trace = double_sided_trace(victim_row=100, total_requests=10)
        rows = [e.row for e in trace.entries]
        assert all(a != b for a, b in zip(rows, rows[1:]))


class TestMultiSided:
    def test_aggressor_spacing_leaves_victims(self):
        trace = multi_sided_trace(num_victims=4, base_row=10, total_requests=10)
        rows = sorted({e.row for e in trace.entries})
        assert rows == [10, 12, 14, 16, 18]

    def test_rotation_covers_all_aggressors(self):
        trace = multi_sided_trace(num_victims=32, total_requests=33)
        assert len({e.row for e in trace.entries}) == 33


class TestRotation:
    def test_row_count(self):
        trace = rotation_attack_trace(num_rows=7, total_requests=21)
        assert len({e.row for e in trace.entries}) == 7

    def test_rejects_zero_rows(self):
        with pytest.raises(ValueError):
            rotation_attack_trace(num_rows=0)


class TestBlockHammerAdversarial:
    def test_finds_aliases_in_small_filter(self):
        cbf = CountingBloomFilter(size=32, num_hashes=2)
        aliases = find_aliasing_rows(cbf, target_row=5, count=4,
                                     search_space=8192)
        assert aliases
        target = set(cbf._indices(5))
        for alias in aliases:
            assert target & set(cbf._indices(alias))

    def test_trace_alternates_rows(self):
        trace = blockhammer_adversarial_trace(
            benign_rows=[100], cbf_size=64, blacklist_threshold=16,
            total_requests=20,
        )
        rows = [e.row for e in trace.entries]
        assert len(set(rows)) >= 2
        assert all(a != b for a, b in zip(rows, rows[1:]))

    def test_trace_is_reads_only(self):
        trace = blockhammer_adversarial_trace(
            benign_rows=[10, 20], cbf_size=128, blacklist_threshold=8,
            total_requests=12,
        )
        assert all(not e.is_write for e in trace.entries)


class TestVectorizedProfiler:
    """The batch-probed profiling sweep equals the scalar lazy loops."""

    def _scalar_aliasing(self, cbf, target_row, count, search_space,
                         min_shared=1):
        target_indices = set(cbf._indices(target_row))
        aliases = []
        for row in range(search_space):
            if row == target_row:
                continue
            shared = sum(
                1 for idx in cbf._indices(row) if idx in target_indices
            )
            if shared >= min_shared:
                aliases.append(row)
                if len(aliases) >= count:
                    break
        return aliases

    def _scalar_covering(self, cbf, target_row, search_space):
        needed = list(dict.fromkeys(cbf._indices(target_row)))
        covers = []
        for index in needed:
            for row in range(search_space):
                if row == target_row or row in covers:
                    continue
                if index in cbf._indices(row):
                    covers.append(row)
                    break
        return covers

    def test_find_aliasing_matches_scalar_sweep(self):
        pytest.importorskip("numpy")
        cbf = CountingBloomFilter(size=64, num_hashes=4, seed=0xB10F)
        for target in (5, 999, 4021):
            assert find_aliasing_rows(
                cbf, target, count=6, search_space=4096
            ) == self._scalar_aliasing(cbf, target, 6, 4096)

    def test_find_covering_matches_scalar_sweep(self):
        pytest.importorskip("numpy")
        cbf = CountingBloomFilter(size=256, num_hashes=4, seed=0xB10F)
        for target in (7, 123, 5000):
            assert find_covering_rows(
                cbf, target, search_space=8192
            ) == self._scalar_covering(cbf, target, 8192)

    def test_probe_indices_many_matches_scalar(self):
        np = pytest.importorskip("numpy")
        from repro.streaming.vectorized import NumpyCountingBloomFilter

        cbf = CountingBloomFilter(size=128, num_hashes=5, seed=0x1234)
        twin = NumpyCountingBloomFilter(128, 5, 0x1234)
        rows = list(range(500))
        assert (
            twin.probe_indices_many(rows).tolist()
            == cbf.probe_indices_many(rows)
        )
