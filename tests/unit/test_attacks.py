"""Unit tests for the attack trace generators."""

import pytest

from repro.workloads.attacks import (
    blockhammer_adversarial_trace,
    double_sided_trace,
    find_aliasing_rows,
    multi_sided_trace,
    rotation_attack_trace,
)
from repro.streaming.counting_bloom import CountingBloomFilter


class TestDoubleSided:
    def test_alternates_neighbors(self):
        trace = double_sided_trace(victim_row=100, total_requests=6)
        rows = [e.row for e in trace.entries]
        assert rows == [99, 101, 99, 101, 99, 101]

    def test_every_access_misses(self):
        """Alternating rows defeats the row buffer: all ACTs."""
        trace = double_sided_trace(victim_row=100, total_requests=10)
        rows = [e.row for e in trace.entries]
        assert all(a != b for a, b in zip(rows, rows[1:]))


class TestMultiSided:
    def test_aggressor_spacing_leaves_victims(self):
        trace = multi_sided_trace(num_victims=4, base_row=10, total_requests=10)
        rows = sorted({e.row for e in trace.entries})
        assert rows == [10, 12, 14, 16, 18]

    def test_rotation_covers_all_aggressors(self):
        trace = multi_sided_trace(num_victims=32, total_requests=33)
        assert len({e.row for e in trace.entries}) == 33


class TestRotation:
    def test_row_count(self):
        trace = rotation_attack_trace(num_rows=7, total_requests=21)
        assert len({e.row for e in trace.entries}) == 7

    def test_rejects_zero_rows(self):
        with pytest.raises(ValueError):
            rotation_attack_trace(num_rows=0)


class TestBlockHammerAdversarial:
    def test_finds_aliases_in_small_filter(self):
        cbf = CountingBloomFilter(size=32, num_hashes=2)
        aliases = find_aliasing_rows(cbf, target_row=5, count=4,
                                     search_space=8192)
        assert aliases
        target = set(cbf._indices(5))
        for alias in aliases:
            assert target & set(cbf._indices(alias))

    def test_trace_alternates_rows(self):
        trace = blockhammer_adversarial_trace(
            benign_rows=[100], cbf_size=64, blacklist_threshold=16,
            total_requests=20,
        )
        rows = [e.row for e in trace.entries]
        assert len(set(rows)) >= 2
        assert all(a != b for a, b in zip(rows, rows[1:]))

    def test_trace_is_reads_only(self):
        trace = blockhammer_adversarial_trace(
            benign_rows=[10, 20], cbf_size=128, blacklist_threshold=8,
            total_requests=12,
        )
        assert all(not e.is_write for e in trace.entries)
