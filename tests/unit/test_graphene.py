"""Unit tests for Graphene (ARR) and RFM-Graphene (the strawman)."""

import pytest

from repro.mitigations.graphene import GrapheneScheme, graphene_entries
from repro.mitigations.rfm_graphene import (
    RfmGrapheneScheme,
    arr_graphene_safe_flip_th,
    rfm_graphene_best_safe_flip_th,
    rfm_graphene_safe_flip_th,
)


class TestGrapheneEntries:
    def test_entries_scale_inversely_with_flip_th(self):
        assert graphene_entries(1_500) > graphene_entries(50_000)

    def test_entries_positive(self):
        assert graphene_entries(100_000) >= 1


class TestGrapheneScheme:
    def test_arr_at_threshold(self):
        scheme = GrapheneScheme(flip_th=40)  # threshold = 10
        victims = []
        for i in range(10):
            victims = scheme.on_activate(7, cycle=i)
        assert sorted(victims) == [6, 8]

    def test_arr_repeats_at_multiples(self):
        scheme = GrapheneScheme(flip_th=40)
        arr_count = 0
        for i in range(35):
            if scheme.on_activate(7, cycle=i):
                arr_count += 1
        assert arr_count == 3  # at counts 10, 20, 30

    def test_table_reset_clears_state(self):
        scheme = GrapheneScheme(flip_th=40, reset_interval_cycles=1000)
        for i in range(9):
            scheme.on_activate(7, cycle=i)
        # cross the reset boundary: counter starts over
        assert scheme.on_activate(7, cycle=2000) == []
        assert scheme.resets == 1
        assert scheme.table.estimate(7) == 1

    def test_cold_rows_never_trigger(self):
        scheme = GrapheneScheme(flip_th=40_000)
        for i in range(100):
            assert scheme.on_activate(i * 7, cycle=i) == []

    def test_edge_row_clipped(self):
        scheme = GrapheneScheme(flip_th=40, rows_per_bank=8)
        victims = []
        for i in range(10):
            victims = scheme.on_activate(0, cycle=i)
        assert victims == [1]


class TestFig2Analysis:
    def test_arr_linear_in_threshold(self):
        assert arr_graphene_safe_flip_th(2_000) == 8_000
        assert arr_graphene_safe_flip_th(4_000) == 16_000

    def test_rfm_version_floors_out(self):
        """Figure 2: lowering the threshold stops helping."""
        high = rfm_graphene_safe_flip_th(4_000, rfm_th=64)
        low = rfm_graphene_safe_flip_th(250, rfm_th=64)
        floor = rfm_graphene_best_safe_flip_th(rfm_th=64)
        assert floor <= high
        assert floor <= low
        # ARR-Graphene at threshold 250 protects 1K; RFM-Graphene cannot
        # protect anything below its floor (~tens of K).
        assert arr_graphene_safe_flip_th(250) == 1_000
        assert floor > 10_000

    def test_paper_example_scale(self):
        """Threshold 2K @ RFM_TH 64 -> ~20K safe FlipTH (Section III-A)."""
        value = rfm_graphene_safe_flip_th(2_000, rfm_th=64)
        assert 15_000 < value < 50_000

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            rfm_graphene_safe_flip_th(0, 64)
        with pytest.raises(ValueError):
            arr_graphene_safe_flip_th(-1)


class TestRfmGrapheneScheme:
    def test_threshold_crossing_buffers_not_refreshes(self):
        scheme = RfmGrapheneScheme(threshold=5, n_entries=8)
        for i in range(6):
            assert scheme.on_activate(10, cycle=i) == []
        assert len(scheme._pending) == 1

    def test_rfm_pops_one_buffered_row(self):
        scheme = RfmGrapheneScheme(threshold=5, n_entries=8)
        for row in (10, 20):
            for _ in range(6):
                scheme.on_activate(row, 0)
        victims = scheme.on_rfm(0)
        assert sorted(victims) == [9, 11]  # FIFO: row 10 first
        victims = scheme.on_rfm(0)
        assert sorted(victims) == [19, 21]

    def test_queue_depth_tracks_concentration(self):
        scheme = RfmGrapheneScheme(threshold=3, n_entries=32)
        for row in range(8):
            for _ in range(3):
                scheme.on_activate(row * 2, 0)
        assert scheme.max_queue_depth == 8

    def test_rfm_on_empty_queue(self):
        scheme = RfmGrapheneScheme(threshold=5)
        assert scheme.on_rfm(0) == []

    def test_row_not_double_queued(self):
        scheme = RfmGrapheneScheme(threshold=3, n_entries=8)
        for _ in range(5):
            scheme.on_activate(10, 0)
        assert len(scheme._pending) == 1
