"""Unit tests for PARA."""

import pytest

from repro.mitigations.para import ParaScheme, para_probability


class TestParaProbability:
    def test_probability_in_range(self):
        for flip_th in (1_500, 6_250, 50_000):
            p = para_probability(flip_th)
            assert 0.0 < p <= 1.0

    def test_lower_flip_th_needs_higher_probability(self):
        assert para_probability(1_500) > para_probability(50_000)

    def test_meets_failure_target(self):
        flip_th, target = 6_250, 1e-15
        p = para_probability(flip_th, target)
        survival = (1 - p / 2) ** (flip_th / 2)
        assert survival <= target * 1.01

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            para_probability(0)
        with pytest.raises(ValueError):
            para_probability(1000, target_failure=2.0)


class TestParaScheme:
    def test_refresh_rate_matches_probability(self):
        scheme = ParaScheme(probability=0.25, seed=1)
        refreshes = sum(bool(scheme.on_activate(100, 0)) for _ in range(4000))
        assert 800 < refreshes < 1200  # ~1000 expected

    def test_zero_probability_never_refreshes(self):
        scheme = ParaScheme(probability=0.0)
        assert all(not scheme.on_activate(5, 0) for _ in range(100))

    def test_victim_is_adjacent(self):
        scheme = ParaScheme(probability=1.0, seed=2)
        victims = scheme.on_activate(100, 0)
        assert victims and victims[0] in (99, 101)

    def test_edge_row_reflects_inward(self):
        scheme = ParaScheme(probability=1.0, rows_per_bank=64, seed=3)
        for _ in range(20):
            victims = scheme.on_activate(0, 0)
            assert victims == [1]

    def test_deterministic_with_seed(self):
        a = ParaScheme(probability=0.5, seed=7)
        b = ParaScheme(probability=0.5, seed=7)
        seq_a = [tuple(a.on_activate(i, 0)) for i in range(50)]
        seq_b = [tuple(b.on_activate(i, 0)) for i in range(50)]
        assert seq_a == seq_b

    def test_stats_track_refreshes(self):
        scheme = ParaScheme(probability=1.0)
        scheme.on_activate(10, 0)
        assert scheme.stats.preventive_refresh_rows == 1
        assert scheme.stats.acts_observed == 1
