"""Unit tests for the physical cost model."""

import pytest

from repro.analysis.cost_model import (
    logic_area_mm2,
    mc_table_cost,
    mithril_module_cost,
    paper_headline_check,
)
from repro.core.config import MithrilConfig, paper_default_config


class TestLogicArea:
    def test_scales_linearly_with_bits(self):
        assert logic_area_mm2(2_000) == pytest.approx(
            2 * logic_area_mm2(1_000)
        )

    def test_sram_cheaper_than_cam(self):
        assert logic_area_mm2(0, sram_bits=1_000) < logic_area_mm2(1_000)

    def test_zero_bits_zero_area(self):
        assert logic_area_mm2(0) == 0.0


class TestMithrilModuleCost:
    def test_paper_headline_order_of_magnitude(self):
        """Paper: ~0.024 mm^2 per bank at FlipTH = 6.25K, ~1% of chip."""
        check = paper_headline_check(6_250)
        assert 0.005 < check["module_mm2"] < 0.1
        assert 0.2 < check["chip_fraction_pct"] < 5.0

    def test_cost_grows_with_table(self):
        small = mithril_module_cost(paper_default_config(50_000))
        large = mithril_module_cost(paper_default_config(1_500))
        assert large.area_mm2 > 5 * small.area_mm2

    def test_per_chip_is_per_bank_times_banks(self, organization):
        config = paper_default_config(6_250)
        cost = mithril_module_cost(config, organization)
        assert cost.per_chip_area_mm2 == pytest.approx(
            cost.area_mm2 * organization.banks_per_rank
        )

    def test_summary_keys(self):
        cost = mithril_module_cost(paper_default_config(6_250))
        summary = cost.summary()
        for key in ("storage_bits", "area_mm2", "chip_fraction_pct"):
            assert key in summary


class TestMcTableCost:
    def test_mc_table_cheaper_per_bit_than_dram_module(self):
        bits = 10_000
        mc = mc_table_cost(bits)
        config = MithrilConfig(flip_th=6_250, rfm_th=128, n_entries=1)
        # same bit count on the DRAM die costs ~10x more
        dram_area = logic_area_mm2(bits)
        assert mc.area_mm2 < dram_area / 5

    def test_chip_fraction_not_applicable(self):
        assert mc_table_cost(1_000).chip_fraction == 0.0
