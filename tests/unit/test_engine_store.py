"""Unit tests for the sharded, indexed result store."""

import hashlib
import json
import time

from repro.engine import (
    CacheIndex,
    ResultCache,
    SimJob,
    WorkloadSpec,
    code_version,
)
from repro.engine.store import (
    count_entries,
    is_shard_dir,
    iter_entry_paths,
    shard_name,
)
from repro.sim.metrics import SimulationResult
from repro.types import EnergyCounts


def _job(**knobs):
    return SimJob(
        workload=WorkloadSpec.make("fft", seed=21, scale=0.1), **knobs
    )


def _result():
    return SimulationResult(
        scheme_name="none",
        total_cycles=1234,
        per_core_instructions=[10, 20],
        per_core_finish_cycles=[1000, 1234],
        energy=EnergyCounts(acts=5, reads=7),
        acts=5,
        row_hits=3,
        row_misses=2,
    )


class TestShardedLayout:
    def test_writes_land_in_shard_directories(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = _job()
        cache.put(job, _result())
        path = cache.path_for(job)
        assert path.exists()
        assert path.parent.name == shard_name(job.job_hash())
        assert is_shard_dir(path.parent)
        assert cache.get(job) == _result()

    def test_flat_legacy_entries_still_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = _job()
        # a cache written by the pre-sharding layout
        flat = cache.flat_path_for(job)
        flat.parent.mkdir(parents=True)
        flat.write_text(json.dumps({
            "job": job.canonical(),
            "result": {
                "scheme_name": "none", "total_cycles": 1234,
                "per_core_instructions": [10, 20],
                "per_core_finish_cycles": [1000, 1234],
                "energy": {"acts": 5, "reads": 7},
                "acts": 5, "row_hits": 3, "row_misses": 2,
            },
        }))
        hit = cache.get(job)
        assert hit is not None and hit.total_cycles == 1234
        assert cache.entry_count() == 1

    def test_mixed_layout_counts_and_iterates(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_job(), _result())                      # sharded
        flat_job = _job(flip_th=7_777)
        flat = cache.flat_path_for(flat_job)
        flat.write_text("{}")                             # flat legacy
        version_dir = cache.version_dir()
        assert count_entries(version_dir) == 2
        names = {p.name for p in iter_entry_paths(version_dir)}
        assert names == {
            f"{_job().job_hash()}.json", f"{flat_job.job_hash()}.json"
        }

    def test_migrate_moves_flat_into_shards_without_invalidating(
        self, tmp_path
    ):
        cache = ResultCache(tmp_path)
        job = _job()
        cache.put(job, _result())
        # relocate to the flat location, as a legacy cache would have it
        flat = cache.flat_path_for(job)
        cache.path_for(job).rename(flat)
        assert cache.get(job) == _result()  # flat fallback
        assert cache.migrate() == 1
        assert not flat.exists()
        assert cache.path_for(job).exists()
        assert cache.get(job) == _result()  # same key, nothing lost

    def test_gc_and_clear_handle_shards(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_job(), _result())
        dead = tmp_path / "00000000deadbeef"
        (dead / "ab").mkdir(parents=True)
        (dead / "ab" / "abcd.json").write_text("{}")
        (dead / "flat.json").write_text("{}")
        assert cache.versions()["00000000deadbeef"] == 2
        assert cache.gc("00000000deadbeef") == 2
        assert not dead.exists()
        assert cache.clear() == 1
        assert cache.entry_count() == 0


class TestCacheIndex:
    def test_put_appends_queryable_records(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_job(), _result())
        cache.put(_job(scheme="mithril", flip_th=6_250), _result())
        index = cache.index()
        assert len(index.records()) == 2
        hits = index.query(scheme="mithril")
        assert len(hits) == 1
        assert hits[0]["workload"] == "fft"
        assert hits[0]["flip_th"] == 6_250
        assert index.query(workload="fft", flip_th=6_250)
        assert index.query(scheme="graphene") == []

    def test_stale_index_rebuilds_from_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_job(), _result())
        cache.put(_job(scheme="mithril"), _result())
        # lose the index entirely — e.g. a legacy flat cache
        cache.index_for_version().path.unlink()
        index = cache.index()
        assert len(index.records()) == 2
        assert len(index.query(scheme="mithril")) == 1

    def test_deleted_entries_detected_as_stale(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = _job()
        cache.put(job, _result())
        cache.put(_job(scheme="mithril"), _result())
        cache.path_for(job).unlink()
        assert len(cache.index().records()) == 1

    def test_annotations_merge_and_survive_requery(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = _job()
        cache.put(job, _result())
        cache.annotate([job.job_hash()], "fig11-stress")
        cache.annotate([job.job_hash()], "fig9-stress")
        hits = cache.index().query(experiment="fig11-stress")
        assert len(hits) == 1
        assert sorted(hits[0]["experiments"]) == [
            "fig11-stress", "fig9-stress"
        ]
        assert cache.index().query(experiment="nope") == []

    def test_foreign_json_still_counts(self, tmp_path):
        cache = ResultCache(tmp_path)
        version_dir = cache.version_dir()
        version_dir.mkdir(parents=True)
        (version_dir / "hand-made.json").write_text("{not json")
        index = cache.index()
        assert len(index.records()) == 1
        assert index.records()[0]["scheme"] is None

    def test_stats_aggregates(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_job(), _result())
        cache.put(_job(scheme="mithril"), _result())
        stats = cache.stats()[code_version()]
        assert stats.entries == 2
        assert stats.total_bytes > 0
        assert stats.oldest_mtime is not None
        assert stats.newest_mtime >= stats.oldest_mtime


class TestScaleAcceptance:
    """ISSUE acceptance: 10^4 entries index, query, and stat in < 2s."""

    N = 10_000

    def _synthesize(self, version_dir):
        # Sharded entries with minimal but realistic payloads, written
        # directly (synthesizing via put() would pre-build the index
        # and defeat the point: the timed region includes the rebuild).
        version_dir.mkdir(parents=True)
        schemes = ("none", "mithril", "mithril+", "blockhammer")
        made_dirs = set()
        for i in range(self.N):
            job_hash = hashlib.sha256(str(i).encode()).hexdigest()[:24]
            shard = version_dir / job_hash[:2]
            if job_hash[:2] not in made_dirs:
                shard.mkdir(exist_ok=True)
                made_dirs.add(job_hash[:2])
            payload = {
                "job": {
                    "scheme": schemes[i % 4],
                    "workload": {"kind": "fft", "params": []},
                    "flip_th": 6_250,
                    "scale": 1.0,
                },
                "result": {"total_cycles": i},
            }
            (shard / f"{job_hash}.json").write_text(json.dumps(payload))

    def test_ten_thousand_entries_under_two_seconds(self, tmp_path):
        cache = ResultCache(tmp_path)
        version_dir = cache.version_dir("feedfacefeedface")
        self._synthesize(version_dir)

        start = time.perf_counter()
        index = cache.index("feedfacefeedface")   # includes the rebuild
        mithril = index.query(scheme="mithril")
        stats = index.stats()
        elapsed = time.perf_counter() - start

        assert len(index.records()) == self.N
        assert len(mithril) == self.N // 4
        assert stats.entries == self.N
        assert stats.total_bytes > 0
        assert elapsed < 2.0, f"indexing 10^4 entries took {elapsed:.2f}s"

        # warm path: index already fresh — no rescan, near-instant
        start = time.perf_counter()
        again = cache.index("feedfacefeedface").query(scheme="none")
        warm = time.perf_counter() - start
        assert len(again) == self.N // 4
        assert warm < 1.0

    def test_index_file_is_not_an_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_job(), _result())
        assert cache.entry_count() == 1
        index_path = cache.index_for_version().path
        assert index_path.exists()
        assert index_path.suffix == ".jsonl"


class TestIndexRobustness:
    def test_unwritable_index_degrades_to_noop(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        index = CacheIndex(blocker / "gen")
        index.append({"hash": "abc"})          # must not raise
        assert index.records() == []

    def test_blank_and_corrupt_lines_skipped(self, tmp_path):
        index = CacheIndex(tmp_path)
        index.path.write_text(
            '{"hash": "aa", "scheme": "none"}\n'
            "\n"
            "{broken\n"
            '{"no_hash": true}\n'
            '{"hash": "aa", "flip_th": 6250}\n'
        )
        records = index.records()
        assert len(records) == 1
        assert records[0]["scheme"] == "none"
        assert records[0]["flip_th"] == 6250
