"""Unit tests for the adversary stream generators."""

import itertools

import pytest

from repro.verify.adversary import (
    double_sided_stream,
    feinting_stream,
    half_double_stream,
    many_sided_stream,
    random_stream,
    round_robin_stream,
)


class TestStreams:
    def test_double_sided_alternates(self):
        rows = list(double_sided_stream(100, 6))
        assert rows == [99, 101, 99, 101, 99, 101]

    def test_many_sided_covers_all(self):
        rows = list(many_sided_stream(5, 10, base_row=10, spacing=2))
        assert sorted(set(rows)) == [10, 12, 14, 16, 18]

    def test_round_robin_length(self):
        rows = list(round_robin_stream(3, 7))
        assert len(rows) == 7
        assert rows[:3] == rows[3:6]

    def test_feinting_equalizes_rounds(self):
        rows = list(feinting_stream(3, 2, 2, base_row=0, spacing=1))
        # two rounds of (0,0,1,1,2,2)
        assert rows == [0, 0, 1, 1, 2, 2] * 2

    def test_half_double_mostly_distance_two(self):
        rows = list(half_double_stream(100, 100, far_fraction=0.9))
        far = sum(1 for r in rows if abs(r - 100) == 2)
        near = sum(1 for r in rows if abs(r - 100) == 1)
        assert far + near == 100
        assert far >= 85

    def test_half_double_touches_both_sides(self):
        rows = set(half_double_stream(100, 40))
        assert {98, 102} <= rows

    def test_random_stream_deterministic(self):
        a = list(random_stream(100, 50, seed=3))
        b = list(random_stream(100, 50, seed=3))
        assert a == b

    def test_random_stream_in_range(self):
        rows = list(random_stream(10, 200, base_row=50))
        assert all(50 <= r < 60 for r in rows)

    def test_streams_are_lazy(self):
        stream = double_sided_stream(100, 10**12)
        first = list(itertools.islice(stream, 4))
        assert first == [99, 101, 99, 101]
