"""Unit tests for the RowHammer fault model."""

import pytest

from repro.dram.hammer import HammerModel


class TestHammerModel:
    def test_rejects_bad_flip_th(self):
        with pytest.raises(ValueError):
            HammerModel(flip_th=0)

    def test_act_disturbs_both_neighbors(self):
        model = HammerModel(flip_th=100)
        model.on_activate(50)
        assert model.disturbance(49) == 1.0
        assert model.disturbance(51) == 1.0
        assert model.disturbance(50) == 0.0

    def test_edge_row_has_one_neighbor(self):
        model = HammerModel(flip_th=100, rows_per_bank=64)
        model.on_activate(0)
        assert model.disturbance(1) == 1.0
        # no row -1
        assert model.tracked_rows == 1

    def test_flip_at_threshold(self):
        model = HammerModel(flip_th=10)
        for _ in range(10):
            model.on_activate(5)
        assert model.flip_count == 2  # rows 4 and 6
        rows = {flip.row for flip in model.flips}
        assert rows == {4, 6}

    def test_double_sided_flips_at_half(self):
        model = HammerModel(flip_th=10)
        for _ in range(5):
            model.on_activate(4)
            model.on_activate(6)
        flips = [f for f in model.flips if f.row == 5]
        assert flips  # victim between the two aggressors flipped

    def test_refresh_resets_disturbance(self):
        model = HammerModel(flip_th=10)
        for _ in range(9):
            model.on_activate(5)
        model.on_refresh_row(4)
        model.on_activate(5)
        assert model.disturbance(4) == 1.0
        assert not [f for f in model.flips if f.row == 4]

    def test_refresh_range(self):
        model = HammerModel(flip_th=100)
        for row in (10, 20, 30):
            model.on_activate(row)
        model.on_refresh_range(9, 21)
        assert model.disturbance(11) == 0.0
        assert model.disturbance(21) == 0.0
        assert model.disturbance(29) == 1.0

    def test_refresh_large_range_filters(self):
        model = HammerModel(flip_th=100)
        model.on_activate(10)
        model.on_refresh_range(0, 65535)
        assert model.tracked_rows == 0

    def test_max_disturbance_tracked(self):
        model = HammerModel(flip_th=1000)
        for _ in range(7):
            model.on_activate(5)
        assert model.max_disturbance == 7.0
        assert model.max_disturbance_row in (4, 6)

    def test_counter_restarts_after_flip(self):
        model = HammerModel(flip_th=5)
        for _ in range(12):
            model.on_activate(5)
        # 12 acts: flips at 5 and 10 on each side
        assert model.flip_count == 4
        assert model.disturbance(4) == 2.0


class TestBlastRange:
    def test_weighted_non_adjacent_disturbance(self):
        model = HammerModel(flip_th=100, blast_weights=(1.0, 0.25))
        model.on_activate(50)
        assert model.disturbance(49) == 1.0
        assert model.disturbance(48) == 0.25
        assert model.disturbance(47) == 0.0

    def test_rejects_empty_weights(self):
        with pytest.raises(ValueError):
            HammerModel(flip_th=10, blast_weights=())

    def test_aggregated_effect_flips_earlier(self):
        narrow = HammerModel(flip_th=100, blast_weights=(1.0,))
        wide = HammerModel(flip_th=100, blast_weights=(1.0, 0.5))
        # hammer rows 48 and 52: victim 50 accumulates only via range-2
        for _ in range(120):
            narrow.on_activate(48)
            narrow.on_activate(52)
            wide.on_activate(48)
            wide.on_activate(52)
        assert not [f for f in narrow.flips if f.row == 50]
        assert [f for f in wide.flips if f.row == 50]

    def test_snapshot_top(self):
        model = HammerModel(flip_th=1000)
        for _ in range(3):
            model.on_activate(10)
        model.on_activate(20)
        top = model.snapshot_top(2)
        assert top[0][1] == 3.0
