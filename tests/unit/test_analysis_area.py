"""Unit tests for the area model (Table IV)."""

import pytest

from repro.analysis.area import (
    blockhammer_table_kb,
    cbt_table_kb,
    graphene_table_kb,
    mithril_table_kb,
    table_size_comparison,
    twice_table_kb,
)
from repro.params import PAPER_FLIP_THRESHOLDS


class TestSchemeSizes:
    def test_blockhammer_matches_paper_exactly(self):
        """The CBF accounting reproduces Table IV's BlockHammer row."""
        expected = {50_000: 3.75, 25_000: 3.5, 12_500: 3.25,
                    6_250: 6.0, 3_125: 11.0, 1_500: 18.0}
        for flip_th, kb in expected.items():
            assert blockhammer_table_kb(flip_th) == pytest.approx(kb, rel=0.15)

    def test_mithril_matches_paper_scale(self):
        """Mithril-128 @ 6.25K is ~0.84KB in the paper."""
        kb = mithril_table_kb(6_250, rfm_th=128)
        assert 0.5 < kb < 1.2

    def test_mithril_infeasible_returns_none(self):
        assert mithril_table_kb(1_500, rfm_th=256) is None

    def test_sizes_grow_as_flip_th_shrinks(self):
        for model in (graphene_table_kb, twice_table_kb, cbt_table_kb):
            sizes = [model(f) for f in (50_000, 12_500, 3_125)]
            assert sizes == sorted(sizes)

    def test_twice_larger_than_graphene(self):
        """Table IV: TWiCe needs an order of magnitude more storage."""
        for flip_th in PAPER_FLIP_THRESHOLDS:
            assert twice_table_kb(flip_th) > 5 * graphene_table_kb(flip_th)

    def test_mithril_smaller_than_blockhammer(self):
        """Figure 10(e): 4x to 60x smaller at every FlipTH."""
        for flip_th in PAPER_FLIP_THRESHOLDS:
            rfm_th = {1_500: 32, 3_125: 64}.get(flip_th, 128)
            mithril = mithril_table_kb(flip_th, rfm_th)
            assert mithril is not None
            ratio = blockhammer_table_kb(flip_th) / mithril
            assert ratio > 3

    def test_mithril_smaller_than_graphene(self):
        """No reset + bounded counter width -> smaller than Graphene."""
        for flip_th in (50_000, 25_000, 12_500, 6_250):
            mithril = mithril_table_kb(flip_th, rfm_th=128)
            assert mithril < graphene_table_kb(flip_th)


class TestComparisonTable:
    def test_covers_all_schemes_and_thresholds(self):
        table = table_size_comparison()
        assert "Mithril-128 @ DRAM" in table
        assert "BlockHammer @ MC" in table
        for scheme, row in table.items():
            assert set(row) == set(PAPER_FLIP_THRESHOLDS)

    def test_infeasible_cells_are_none(self):
        table = table_size_comparison()
        assert table["Mithril-256 @ DRAM"][1_500] is None
