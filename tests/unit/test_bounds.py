"""Unit tests for Theorems 1 and 2 (the bound M / M')."""

import math

import pytest

from repro.core.bounds import (
    adaptive_bound,
    estimated_growth_bound,
    harmonic,
    is_safe,
    max_counter_spread,
    rfm_intervals_per_window,
    wrapping_counter_bits,
)
from repro.params import DramTimings


class TestHarmonic:
    def test_small_values(self):
        assert harmonic(0) == 0.0
        assert harmonic(1) == 1.0
        assert harmonic(2) == pytest.approx(1.5)
        assert harmonic(4) == pytest.approx(25.0 / 12.0)

    def test_asymptotic_matches_exact(self):
        exact = sum(1.0 / k for k in range(1, 20_001))
        assert harmonic(20_000) == pytest.approx(exact, rel=1e-9)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            harmonic(-1)


class TestTheorem1:
    def test_formula_matches_manual_computation(self):
        n, rfm_th = 100, 64
        w = rfm_intervals_per_window(rfm_th)
        expected = rfm_th * harmonic(n)
        expected += rfm_th * (w - n) / n
        expected += rfm_th * (n - 2) / n
        assert estimated_growth_bound(n, rfm_th) == pytest.approx(expected)

    def test_bound_decreases_with_entries(self):
        values = [estimated_growth_bound(n, 64) for n in (32, 128, 512, 2048)]
        assert values == sorted(values, reverse=True)

    def test_bound_monotone_in_rfm_th_for_fixed_entries(self):
        # Larger RFM_TH -> fewer intervals but much bigger per-interval
        # budget; for realistic table sizes the bound grows.
        values = [estimated_growth_bound(256, r) for r in (32, 64, 128, 256)]
        assert values == sorted(values)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            estimated_growth_bound(0, 64)
        with pytest.raises(ValueError):
            estimated_growth_bound(64, 0)

    def test_paper_scale_sanity(self):
        # Section VI: FlipTH=6.25K works at RFM_TH=128 with a ~1KB table.
        bound = estimated_growth_bound(260, 128)
        assert bound < 6_250 / 2

    def test_respects_custom_timings(self):
        fast = DramTimings(trefw=16e6, trefi=16e6 / 8192)
        slow_bound = estimated_growth_bound(128, 64)
        fast_bound = estimated_growth_bound(128, 64, timings=fast)
        assert fast_bound < slow_bound  # shorter window, fewer intervals


class TestTheorem2:
    def test_adth_zero_equals_theorem1(self):
        assert adaptive_bound(128, 64, 0) == estimated_growth_bound(128, 64)

    def test_bound_never_below_theorem1(self):
        for adth in (50, 100, 200, 400):
            assert adaptive_bound(256, 64, adth) >= estimated_growth_bound(256, 64)

    def test_bound_grows_with_adth(self):
        values = [adaptive_bound(256, 64, a) for a in (0, 100, 200, 400)]
        assert values == sorted(values)

    def test_extra_entries_needed_is_small(self):
        """Figure 7: AdTH=200 costs at most ~12% extra Nentry."""
        from repro.core.config import min_entries_for

        for flip_th, rfm_th in ((6_250, 64), (3_125, 16)):
            base = min_entries_for(flip_th, rfm_th, 0)
            adaptive = min_entries_for(flip_th, rfm_th, 200)
            assert base is not None and adaptive is not None
            assert adaptive >= base
            assert adaptive <= base * 1.3

    def test_rejects_negative_adth(self):
        with pytest.raises(ValueError):
            adaptive_bound(128, 64, -1)


class TestSafetyPredicate:
    def test_safe_configuration(self):
        assert is_safe(n_entries=525, rfm_th=64, flip_th=3_125)

    def test_unsafe_configuration(self):
        assert not is_safe(n_entries=8, rfm_th=256, flip_th=1_500)

    def test_blast_multiplier_tightens(self):
        # A config safe for double-sided may fail for blast range 3.
        n, rfm_th, flip_th = 525, 64, 3_125
        assert is_safe(n, rfm_th, flip_th, blast_multiplier=2.0)
        assert not is_safe(n, rfm_th, flip_th, blast_multiplier=3.5)


class TestWrappingCounterSizing:
    def test_spread_bound(self):
        assert max_counter_spread(64, 512) == 128

    def test_bits_cover_spread(self):
        bits = wrapping_counter_bits(64, 512)
        assert (1 << bits) > 2 * max_counter_spread(64, 512)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            max_counter_spread(0, 16)
