"""Unit tests for the Count-Min sketch."""

import pytest

from repro.streaming.count_min import CountMinSketch


class TestCountMinSketch:
    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            CountMinSketch(width=0)
        with pytest.raises(ValueError):
            CountMinSketch(width=8, depth=0)

    def test_never_underestimates(self):
        sketch = CountMinSketch(width=32, depth=4)
        truth = {}
        for i in range(300):
            element = f"e{i % 40}"
            sketch.observe(element)
            truth[element] = truth.get(element, 0) + 1
        for element, count in truth.items():
            assert sketch.estimate(element) >= count

    def test_exact_when_no_collisions(self):
        sketch = CountMinSketch(width=4096, depth=4)
        sketch.observe("a", 5)
        sketch.observe("b", 3)
        assert sketch.estimate("a") == 5
        assert sketch.estimate("b") == 3

    def test_unseen_element_zero_in_empty_sketch(self):
        sketch = CountMinSketch(width=16, depth=2)
        assert sketch.estimate("ghost") == 0

    def test_total_observed(self):
        sketch = CountMinSketch(width=8, depth=2)
        sketch.observe("a", 4)
        sketch.observe("b", 6)
        assert sketch.total_observed == 10

    def test_rejects_non_positive_count(self):
        sketch = CountMinSketch(width=8)
        with pytest.raises(ValueError):
            sketch.observe("a", -1)

    def test_reset(self):
        sketch = CountMinSketch(width=8, depth=2)
        sketch.observe("a", 9)
        sketch.reset()
        assert sketch.estimate("a") == 0
        assert sketch.total_observed == 0

    def test_different_seeds_different_layout(self):
        a = CountMinSketch(width=8, depth=1, seed=1)
        b = CountMinSketch(width=8, depth=1, seed=999)
        layouts_a = [a._index(f"k{i}", 0) for i in range(50)]
        layouts_b = [b._index(f"k{i}", 0) for i in range(50)]
        assert layouts_a != layouts_b
