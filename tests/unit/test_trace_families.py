"""Unit tests: the stress families hit their documented design targets.

The bounds asserted here are :data:`repro.traces.families.
DESIGN_TARGETS` — the same numbers docs/WORKLOADS.md documents and
``repro traces synth --check`` enforces, evaluated at catalog sizing.
"""

import pytest

from repro.engine import build_workload, smoke_workload_specs, workload_kinds
from repro.engine.job import WorkloadSpec
from repro.traces import (
    DESIGN_TARGETS,
    capacity_pressure,
    characterize_trace,
    characterize_workload,
    design_violations,
    multi_channel_imbalanced,
    row_conflict_heavy,
)

FAMILIES = tuple(sorted(DESIGN_TARGETS))


class TestCatalogRegistration:
    def test_new_kinds_are_registered(self):
        kinds = workload_kinds()
        for kind in FAMILIES:
            assert kind in kinds
        # every listed kind must be buildable as-is, so the trace:<path>
        # pseudo-kind stays out (it names content, not a builder)
        assert not any(k.startswith("trace:") for k in kinds)

    @pytest.mark.parametrize("kind", FAMILIES)
    def test_scale_aware_sizing(self, kind):
        small = build_workload(WorkloadSpec.make(kind, scale=0.1,
                                                 num_cores=2))
        large = build_workload(WorkloadSpec.make(kind, scale=0.5,
                                                 num_cores=2))
        assert len(small) == len(large) == 2
        assert sum(len(t) for t in large) > sum(len(t) for t in small)

    @pytest.mark.parametrize("kind", FAMILIES)
    def test_deterministic(self, kind):
        a = build_workload(WorkloadSpec.make(kind, scale=0.1, num_cores=2))
        b = build_workload(WorkloadSpec.make(kind, scale=0.1, num_cores=2))
        assert [t.entries for t in a] == [t.entries for t in b]

    def test_smoke_specs_cover_every_registered_kind(self):
        specs = smoke_workload_specs(0.05)
        assert sorted(specs) == workload_kinds()
        for spec in specs.values():
            assert build_workload(spec)


class TestDesignTargets:
    @pytest.mark.parametrize("kind", FAMILIES)
    def test_catalog_sizing_hits_targets(self, kind):
        traces = build_workload(WorkloadSpec.make(kind, scale=1.0))
        assert design_violations(kind, traces) == []

    def test_unknown_kind_rejected(self):
        with pytest.raises(KeyError, match="no design targets"):
            design_violations("fft", [])

    def test_violations_are_reported(self):
        # a streaming workload is the opposite of capacity pressure
        from repro.workloads.synthetic import streaming_sweep_trace

        traces = [streaming_sweep_trace(num_requests=320,
                                        accesses_per_row=16)]
        violations = design_violations("capacity-pressure", traces)
        assert any("mean_burst_length" in v for v in violations)


class TestFamilyBehaviour:
    def test_capacity_pressure_thrashes_every_bank(self):
        traces = capacity_pressure(num_cores=2, num_requests=400,
                                   num_banks=8, seed=1)
        char = characterize_workload(traces)
        assert char.banks_touched == 8
        assert char.act_per_access == pytest.approx(1.0)
        assert char.max_burst_length == 1

    def test_row_conflict_pairs_share_one_bank(self):
        traces = row_conflict_heavy(num_cores=4, num_requests=100,
                                    num_banks=16, seed=2)
        banks = [t.banks_touched() for t in traces]
        assert banks[0] == banks[1]          # the pair shares its bank
        assert banks[2] == banks[3]
        assert banks[0] != banks[2]          # pairs get distinct banks
        rows_a = {e.row for e in traces[0].entries}
        rows_b = {e.row for e in traces[1].entries}
        assert not rows_a & rows_b           # antagonistic row sets

    def test_row_conflict_rejects_degenerate_rows(self):
        with pytest.raises(ValueError, match="conflict_rows"):
            row_conflict_heavy(conflict_rows=1)

    def test_multi_channel_skews_toward_hot_channel(self):
        traces = multi_channel_imbalanced(num_cores=2, num_requests=800,
                                          hot_share=0.8, seed=3)
        char = characterize_workload(traces)
        assert char.channel_share_top == pytest.approx(0.8, abs=0.08)
        for trace in traces:
            assert characterize_trace(trace).mean_burst_length >= 2.0

    def test_multi_channel_validates_parameters(self):
        with pytest.raises(ValueError, match="hot_share"):
            multi_channel_imbalanced(hot_share=0.2)
        with pytest.raises(ValueError, match="accesses_per_row"):
            multi_channel_imbalanced(accesses_per_row=0)
