"""Unit tests for the Mithril configuration search (Figure 6)."""

import pytest

from repro.core.bounds import adaptive_bound
from repro.core.config import (
    MithrilConfig,
    configuration_curve,
    lossy_counting_bound,
    lossy_counting_entries,
    min_entries_for,
    paper_default_config,
)


class TestMinEntries:
    def test_returned_config_is_safe(self):
        for flip_th, rfm_th in ((50_000, 256), (6_250, 128), (1_500, 32)):
            n = min_entries_for(flip_th, rfm_th)
            assert n is not None
            assert adaptive_bound(n, rfm_th, 0) < flip_th / 2

    def test_minimality(self):
        n = min_entries_for(6_250, 128)
        assert adaptive_bound(n - 1, 128, 0) >= 6_250 / 2

    def test_infeasible_returns_none(self):
        # FlipTH=1.5K cannot be protected at RFM_TH=256 (Figure 6).
        assert min_entries_for(1_500, 256) is None

    def test_lower_rfm_th_needs_fewer_entries(self):
        high = min_entries_for(6_250, 256)
        low = min_entries_for(6_250, 32)
        assert low < high

    def test_rejects_bad_flip_th(self):
        with pytest.raises(ValueError):
            min_entries_for(0, 64)

    def test_paper_table_iv_scale(self):
        """Mithril-128 @ FlipTH 6.25K should be ~0.8-1KB (paper: 0.84KB)."""
        n = min_entries_for(6_250, 128)
        config = MithrilConfig(flip_th=6_250, rfm_th=128, n_entries=n)
        assert 0.5 < config.table_kilobytes() < 1.2


class TestConfigurationCurve:
    def test_curve_monotone_tradeoff(self):
        """Figure 6: larger RFM_TH -> larger table, for any FlipTH."""
        curve = configuration_curve(6_250, rfm_th_values=(16, 32, 64, 128, 256))
        sizes = [c.n_entries for c in curve]
        assert sizes == sorted(sizes)

    def test_low_flip_th_excludes_high_rfm_th(self):
        curve = configuration_curve(1_500, rfm_th_values=(32, 64, 128, 256))
        present = {c.rfm_th for c in curve}
        assert 256 not in present
        assert 32 in present

    def test_every_config_is_safe(self):
        for config in configuration_curve(12_500):
            assert config.bound < config.flip_th / 2


class TestLossyCountingComparison:
    def test_lossy_needs_more_entries_than_cbs(self):
        """Figure 6 dotted lines: Lossy-Counting tables are larger."""
        for flip_th in (50_000, 25_000):
            cbs = min_entries_for(flip_th, 256)
            lossy = lossy_counting_entries(flip_th, 256)
            assert lossy is not None
            assert lossy > cbs

    def test_lossy_bound_above_cbs_bound(self):
        from repro.core.bounds import estimated_growth_bound

        assert lossy_counting_bound(128, 64) > estimated_growth_bound(128, 64)


class TestPaperDefaultConfig:
    def test_known_thresholds(self):
        config = paper_default_config(6_250)
        assert config.rfm_th == 128
        assert config.bound < 6_250 / 2

    def test_adaptive_th_carried(self):
        config = paper_default_config(6_250, adaptive_th=200)
        assert config.adaptive_th == 200
        assert config.n_entries >= paper_default_config(6_250).n_entries

    def test_unknown_threshold_falls_back(self):
        config = paper_default_config(10_000)
        assert config.bound < 10_000 / 2

    def test_table_bits_positive(self):
        config = paper_default_config(3_125)
        assert config.table_bits() > 0
