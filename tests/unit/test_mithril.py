"""Unit tests for the Mithril table, scheme, and wrapping counters."""

import pytest

from repro.core.mithril import MithrilScheme, MithrilTable, WrappingCounter
from repro.protection import build_scheme


class TestWrappingCounter:
    def test_rejects_tiny_width(self):
        with pytest.raises(ValueError):
            WrappingCounter(bits=1)

    def test_increment_wraps(self):
        counter = WrappingCounter(bits=4, value=15)
        counter.increment()
        assert counter.value == 0

    def test_comparison_across_wrap(self):
        a = WrappingCounter(bits=4, value=1)   # conceptually 17
        b = WrappingCounter(bits=4, value=14)  # conceptually 14
        assert a.difference(b) == 3
        assert a > b

    def test_comparison_within_range(self):
        a = WrappingCounter(bits=8, value=100)
        b = WrappingCounter(bits=8, value=90)
        assert a > b
        assert not b > a
        assert a >= b

    def test_set_to(self):
        a = WrappingCounter(bits=6, value=10)
        b = WrappingCounter(bits=6, value=50)
        a.set_to(b)
        assert a.value == 50

    def test_tracks_unbounded_counter_ordering(self):
        """Wrapped comparison equals true comparison while the true
        difference stays inside the half-window."""
        bits = 6
        window = 1 << (bits - 1)
        wrapped = [WrappingCounter(bits), WrappingCounter(bits)]
        true = [0, 0]
        import random

        rng = random.Random(42)
        for _ in range(1000):
            i = rng.randrange(2)
            wrapped[i].increment()
            true[i] += 1
            if abs(true[0] - true[1]) >= window:
                # re-sync the laggard, as demote-to-min does in hardware
                j = 0 if true[0] < true[1] else 1
                wrapped[j].set_to(wrapped[1 - j])
                true[j] = true[1 - j]
            expected = (true[0] > true[1]) - (true[0] < true[1])
            actual = (
                (wrapped[0].difference(wrapped[1]) > 0)
                - (wrapped[0].difference(wrapped[1]) < 0)
            )
            assert actual == expected


class TestMithrilTable:
    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            MithrilTable(0)

    def test_greedy_select_returns_hottest(self):
        table = MithrilTable(4)
        for _ in range(5):
            table.record_activation(10)
        table.record_activation(20)
        row, count = table.greedy_select()
        assert row == 10 and count == 5

    def test_demote_max_lowers_to_min(self):
        table = MithrilTable(2)
        for _ in range(9):
            table.record_activation(1)
        for _ in range(4):
            table.record_activation(2)
        demoted = table.demote_max()
        assert demoted == 1
        assert table.estimate(1) == 4

    def test_empty_table_selects_none(self):
        table = MithrilTable(4)
        assert table.greedy_select() is None
        assert table.demote_max() is None

    def test_spread(self):
        table = MithrilTable(2)
        for _ in range(7):
            table.record_activation(5)
        table.record_activation(6)
        assert table.spread() == table.max_count() - table.min_count()

    def test_counter_bits_overflow_detection(self):
        table = MithrilTable(2, counter_bits=3)  # window = 4
        with pytest.raises(OverflowError):
            for _ in range(10):
                table.record_activation(7)

    def test_max_spread_seen_tracks(self):
        table = MithrilTable(4)
        for _ in range(6):
            table.record_activation(1)
        assert table.max_spread_seen >= 6


class TestMithrilScheme:
    def test_registered(self):
        scheme = build_scheme("mithril", n_entries=16, rfm_th=8)
        assert isinstance(scheme, MithrilScheme)

    def test_mithril_plus_registered(self):
        scheme = build_scheme("mithril+", n_entries=16, rfm_th=8, adaptive_th=4)
        assert scheme.plus
        assert scheme.uses_mrr_gating

    def test_act_returns_no_arr(self):
        scheme = MithrilScheme(n_entries=8, rfm_th=4)
        assert scheme.on_activate(100, cycle=0) == []

    def test_rfm_refreshes_victims_of_hottest(self):
        scheme = MithrilScheme(n_entries=8, rfm_th=4)
        for _ in range(5):
            scheme.on_activate(100, 0)
        victims = scheme.on_rfm(cycle=10)
        assert sorted(victims) == [99, 101]
        # counter was demoted: next greedy pick differs or count dropped
        assert scheme.table.estimate(100) == scheme.table.min_count()

    def test_blast_radius_two_refreshes_four_rows(self):
        scheme = MithrilScheme(n_entries=8, rfm_th=4, blast_radius=2)
        scheme.on_activate(100, 0)
        victims = scheme.on_rfm(0)
        assert sorted(victims) == [98, 99, 101, 102]

    def test_edge_row_victims_clipped(self):
        scheme = MithrilScheme(n_entries=8, rfm_th=4, rows_per_bank=64)
        scheme.on_activate(0, 0)
        assert scheme.on_rfm(0) == [1]

    def test_adaptive_skips_small_spread(self):
        scheme = MithrilScheme(n_entries=8, rfm_th=4, adaptive_th=100)
        for _ in range(5):
            scheme.on_activate(1, 0)
        assert scheme.on_rfm(0) == []
        assert scheme.stats.rfms_skipped == 1

    def test_adaptive_fires_on_large_spread(self):
        scheme = MithrilScheme(n_entries=8, rfm_th=4, adaptive_th=10)
        for _ in range(20):
            scheme.on_activate(1, 0)
        assert scheme.on_rfm(0) != []

    def test_rfm_needed_flag_plain_mithril_always_true(self):
        scheme = MithrilScheme(n_entries=8, rfm_th=4, adaptive_th=100)
        assert scheme.rfm_needed_flag()

    def test_rfm_needed_flag_mithril_plus_gates(self):
        scheme = MithrilScheme(
            n_entries=8, rfm_th=4, adaptive_th=10, plus=True
        )
        for _ in range(3):
            scheme.on_activate(1, 0)
        assert not scheme.rfm_needed_flag()
        for _ in range(20):
            scheme.on_activate(1, 0)
        assert scheme.rfm_needed_flag()

    def test_empty_table_rfm_noop(self):
        scheme = MithrilScheme(n_entries=8, rfm_th=4)
        assert scheme.on_rfm(0) == []

    def test_rejects_bad_blast_radius(self):
        with pytest.raises(ValueError):
            MithrilScheme(blast_radius=0)

    def test_table_entries_reported(self):
        scheme = MithrilScheme(n_entries=123, rfm_th=8)
        assert scheme.table_entries() == 123
