"""Unit tests for the auto-refresh engine."""

import pytest

from repro.dram.refresh import AutoRefreshEngine
from repro.params import DramOrganization, DramTimings


class TestAutoRefreshEngine:
    def test_no_tick_before_first_trefi(self, timings, organization):
        engine = AutoRefreshEngine(timings, organization)
        assert not engine.due(engine.trefi_cycles - 1)
        assert engine.pop_tick(engine.trefi_cycles - 1) is None

    def test_first_tick_at_trefi(self, timings, organization):
        engine = AutoRefreshEngine(timings, organization)
        tick = engine.pop_tick(engine.trefi_cycles)
        assert tick is not None
        tick_cycle, first_row, last_row = tick
        assert tick_cycle == engine.trefi_cycles
        assert first_row == 0
        assert last_row == organization.rows_per_refresh_group - 1

    def test_groups_advance_in_order(self, timings, organization):
        engine = AutoRefreshEngine(timings, organization)
        rows_per_group = organization.rows_per_refresh_group
        t = engine.trefi_cycles
        for group in range(5):
            _, first_row, _ = engine.pop_tick(t)
            assert first_row == group * rows_per_group
            t += engine.trefi_cycles

    def test_pending_ticks_counts_backlog(self, timings, organization):
        engine = AutoRefreshEngine(timings, organization)
        cycle = engine.trefi_cycles * 5
        assert engine.pending_ticks(cycle) == 5

    def test_drain_due_consumes_all(self, timings, organization):
        engine = AutoRefreshEngine(timings, organization)
        ticks = engine.drain_due(engine.trefi_cycles * 3)
        assert len(ticks) == 3
        assert engine.pending_ticks(engine.trefi_cycles * 3) == 0

    def test_full_window_covers_every_row(self, timings, organization):
        engine = AutoRefreshEngine(timings, organization)
        covered = set()
        t = engine.trefi_cycles
        for _ in range(organization.refresh_groups):
            _, first_row, last_row = engine.pop_tick(t)
            covered.update(range(first_row, last_row + 1))
            t += engine.trefi_cycles
        assert len(covered) == organization.rows_per_bank

    def test_group_cursor_wraps(self, timings, organization):
        engine = AutoRefreshEngine(timings, organization)
        t = engine.trefi_cycles
        for _ in range(organization.refresh_groups):
            engine.pop_tick(t)
            t += engine.trefi_cycles
        _, first_row, _ = engine.pop_tick(t)
        assert first_row == 0  # wrapped around
