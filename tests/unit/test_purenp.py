"""The pure-python RNG fallback is bit-exact against numpy.

Two layers of proof:

* draw-level: every ``Generator`` method the workload generators use
  produces the same bits as installed numpy (skipped when numpy is
  absent — then the vendored known-value pins below carry the check);
* workload-level: representative generators build identical traces
  under ``REPRO_FORCE_PURE_RNG=1`` — the guarantee the no-numpy CI
  lane's golden-equivalence run rests on.

The known-value pins were captured from numpy once and keep validating
the pure implementation in environments where numpy is missing.
"""

import pytest

from repro.purenp import PCG64, SeedSequence, default_rng, pairwise_sum

try:
    import numpy as np

    HAVE_NUMPY = True
except ImportError:
    np = None
    HAVE_NUMPY = False

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")

SEEDS = [0, 1, 11, 12, 21, 22, 23, 31, 61, 62, 63, 99, 123456, 2**40 + 7]


# ---------------------------------------------------------------------------
# known-value pins (numpy-derived, valid without numpy)
# ---------------------------------------------------------------------------


class TestKnownValues:
    def test_seed_sequence_pool_words(self):
        assert SeedSequence(11).generate_state(4) == [
            3926704849073358691,
            2926583794887213564,
            215141457385765089,
            15564452721439488421,
        ]

    def test_pcg64_raw_stream(self):
        bg = PCG64(21)
        assert [bg.next64() for _ in range(4)] == [
            14409076252388976754,
            11175905102312791203,
            13093520902678603757,
            1643565659307885790,
        ]

    def test_first_doubles(self):
        rng = default_rng(11)
        draws = [rng.random() for _ in range(3)]
        assert draws == [
            0.12857020276919962,
            0.49927786244011496,
            0.6014983576233575,
        ]

    def test_first_exponential_draws(self):
        rng = default_rng(23)
        draws = rng.exponential(24.0, size=3)
        assert draws == [
            3.5419151169648635,
            6.396839519556968,
            2.634583315877207,
        ]

    def test_lemire_integers(self):
        rng = default_rng(31)
        assert rng.integers(0, 4, size=8) == [2, 3, 1, 0, 2, 2, 0, 1]

    def test_determinism(self):
        a = default_rng(7)
        b = default_rng(7)
        assert a.exponential(3.0, size=64) == b.exponential(3.0, size=64)
        assert a.integers(0, 1000, size=64) == b.integers(0, 1000, size=64)


# ---------------------------------------------------------------------------
# draw-level equivalence vs installed numpy
# ---------------------------------------------------------------------------


@needs_numpy
class TestNumpyEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_seed_sequence(self, seed):
        assert (
            np.random.SeedSequence(seed).generate_state(4, np.uint64).tolist()
            == SeedSequence(seed).generate_state(4)
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_raw_stream(self, seed):
        mine = PCG64(seed)
        assert np.random.PCG64(seed).random_raw(32).tolist() == [
            mine.next64() for _ in range(32)
        ]

    @pytest.mark.parametrize("seed", SEEDS[:6])
    def test_interleaved_method_battery(self, seed):
        """The methods in one stream, as the generators interleave them."""
        a = np.random.default_rng(seed)
        b = default_rng(seed)
        assert a.random(100).tolist() == b.random(100)
        assert a.integers(0, 4, size=64).tolist() == b.integers(0, 4, size=64)
        assert [int(a.integers(0, 2**31)) for _ in range(16)] == [
            b.integers(0, 2**31) for _ in range(16)
        ]
        assert [float(a.uniform(16, 40)) for _ in range(16)] == [
            b.uniform(16, 40) for _ in range(16)
        ]
        # 64-bit Lemire path
        assert a.integers(0, 2**40, size=16).tolist() == b.integers(
            0, 2**40, size=16
        )
        assert [int(a.choice([2, 4, 8, 16])) for _ in range(16)] == [
            b.choice([2, 4, 8, 16]) for _ in range(16)
        ]

    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_exponential_bulk(self, seed):
        """50k draws cover the ziggurat tail and wedge paths (~1.1%)."""
        assert (
            np.random.default_rng(seed).exponential(24.0, size=50_000).tolist()
            == default_rng(seed).exponential(24.0, size=50_000)
        )

    def test_weighted_choice(self):
        weights = 1.0 / np.power(
            np.arange(1, 65537, dtype=np.float64), 0.75
        )
        weights /= weights.sum()
        assert (
            np.random.default_rng(23)
            .choice(65536, size=4000, p=weights)
            .tolist()
            == default_rng(23).choice(65536, size=4000, p=weights.tolist())
        )

    @pytest.mark.parametrize(
        "size", [1, 5, 8, 9, 17, 100, 127, 128, 129, 1000, 4097, 65536]
    )
    def test_pairwise_sum(self, size):
        values = (
            1.0 / np.power(np.arange(1, size + 1, dtype=np.float64), 0.75)
        )
        assert pairwise_sum(values.tolist()) == float(values.sum())

    def test_zipf_weights_default(self, monkeypatch):
        from repro.workloads import nprng

        monkeypatch.delenv(nprng.FORCE_PURE_ENV, raising=False)
        ranks = np.arange(1, 65537, dtype=np.float64)
        expected = 1.0 / np.power(ranks, 0.75)
        expected /= expected.sum()
        got = nprng.zipf_weights(65536, 0.75)
        assert isinstance(got, np.ndarray)
        assert got.tolist() == expected.tolist()

    def test_zipf_weights_pure_matches_numpy(self, monkeypatch):
        from repro.workloads import nprng

        monkeypatch.delenv(nprng.FORCE_PURE_ENV, raising=False)
        expected = nprng.zipf_weights(65536, 0.75).tolist()
        monkeypatch.setenv(nprng.FORCE_PURE_ENV, "1")
        assert nprng.zipf_weights(65536, 0.75) == expected

    def test_zipf_weights_unvendored_warns(self, monkeypatch):
        from repro.workloads import nprng

        monkeypatch.setenv(nprng.FORCE_PURE_ENV, "1")
        with pytest.warns(RuntimeWarning, match="no vendored pow"):
            nprng.zipf_weights(512, 0.5)


# ---------------------------------------------------------------------------
# workload-level equivalence (forced-pure == numpy, trace for trace)
# ---------------------------------------------------------------------------


def _trace_tuples(traces):
    return [
        (
            trace.name,
            trace.memory_intensive,
            [
                (
                    e.gap_cycles,
                    e.bank_index,
                    e.row,
                    e.column,
                    e.is_write,
                    e.instructions,
                )
                for e in trace.entries
            ],
        )
        for trace in traces
    ]


@needs_numpy
class TestWorkloadEquivalence:
    @pytest.mark.parametrize(
        "builder",
        [
            "mix_high",
            "mix_blend",
            "fft_like",
            "radix_like",
            "pagerank_like",
            "capacity_pressure",
            "row_conflict_heavy",
            "multi_channel_imbalanced",
        ],
    )
    def test_traces_identical(self, builder, monkeypatch):
        from repro.traces import families
        from repro.workloads import multithreaded, spec_like

        monkeypatch.delenv("REPRO_FORCE_PURE_RNG", raising=False)
        fn = (
            getattr(spec_like, builder, None)
            or getattr(multithreaded, builder, None)
            or getattr(families, builder)
        )
        with_numpy = _trace_tuples(fn())
        monkeypatch.setenv("REPRO_FORCE_PURE_RNG", "1")
        assert _trace_tuples(fn()) == with_numpy

    def test_code_version_carries_purerng_marker(self, monkeypatch):
        from repro.engine import cache

        monkeypatch.delenv("REPRO_FORCE_PURE_RNG", raising=False)
        with_numpy = cache.code_version()
        monkeypatch.setenv("REPRO_FORCE_PURE_RNG", "1")
        assert cache.code_version() != with_numpy
        assert len(cache.code_version()) == 16
