"""Unit tests for event-loop details of the simulated system.

The end-to-end behavior is covered by the integration and property
suites; these tests pin down the bank-event scheduling corner cases.
"""

from repro.sim.system import _CYCLE_SHIFT, SimulatedSystem, simulate
from repro.workloads.trace import CoreTrace, TraceEntry


class _AbstainingScheduler:
    """A scheduler that never picks, forcing the fallback path."""

    name = "abstain"

    def pick(self, queue, open_row, cycle, release_of):
        return None

    def on_served(self, core, cycle, contended=True):
        pass


def _traces(num_cores=2, requests=20):
    return [
        CoreTrace(
            name=f"c{core}",
            entries=[
                TraceEntry(gap_cycles=1, bank_index=0, row=i, instructions=2)
                for i in range(requests)
            ],
        )
        for core in range(num_cores)
    ]


class TestSchedulerAbstentionFallback:
    def test_all_requests_complete_without_scheduler(self):
        system = SimulatedSystem(_traces())
        system._schedulers = [
            _AbstainingScheduler() for _ in system._schedulers
        ]
        result = system.run()
        assert result.total_cycles > 0
        assert sum(system._core_served) == 2 * 20

    def test_fallback_skips_throttled_head_of_queue(self):
        """A throttled queue[0] must not starve released requests."""
        system = SimulatedSystem(_traces(num_cores=1, requests=2))
        system._schedulers = [
            _AbstainingScheduler() for _ in system._schedulers
        ]
        controller = system.banks[0]
        first = system._make_request(0, 0, system.cores[0].trace.entries[0])
        second = system._make_request(0, 1, system.cores[0].trace.entries[1])
        controller.queue.extend([first, second])

        original = controller.throttle_release

        def throttle(request, cycle):
            if request is first:
                return cycle + 10_000  # head of queue is throttled
            return original(request, cycle)

        controller.throttle_release = throttle
        system._bank_event(0, 100)
        # The released request (index 1) was served; the throttled head
        # is still queued, and a retry is scheduled rather than a spin.
        assert controller.queue == [first]
        assert system._core_served[0] == 1


class TestThrottledRetry:
    def _throttled_system(self, releases):
        """Two queued requests whose rows release at ``releases``."""
        system = SimulatedSystem(_traces(num_cores=2, requests=2))
        controller = system.banks[0]
        first = system._make_request(0, 0, system.cores[0].trace.entries[0])
        second = system._make_request(1, 1, system.cores[1].trace.entries[1])
        controller.queue.extend([first, second])
        by_row = {
            first.address.row: releases[0],
            second.address.row: releases[1],
        }
        controller.throttle_release = (
            lambda request, cycle: by_row[request.address.row]
        )
        return system, controller

    @staticmethod
    def _pending_cycles(system):
        return [key >> _CYCLE_SHIFT for key in system._heap]

    def test_retry_scheduled_at_earliest_release(self):
        """All candidates throttled: FR-FCFS/BLISS abstain and the
        event loop retries at the earliest release over the queue."""
        system, controller = self._throttled_system([450, 320])
        system._bank_event(0, 100)
        assert len(controller.queue) == 2  # nothing served
        assert system._bank_scheduled[0]
        assert self._pending_cycles(system) == [320]

    def test_abstain_fallback_retries_at_fallback_release(self):
        """With an always-abstaining scheduler the fallback candidate
        (earliest release) sets the retry cycle directly."""
        system, controller = self._throttled_system([999, 210])
        system._schedulers = [
            _AbstainingScheduler() for _ in system._schedulers
        ]
        system._bank_event(0, 100)
        assert len(controller.queue) == 2
        assert self._pending_cycles(system) == [210]

    def test_release_at_current_cycle_is_served_via_fallback(self):
        """Abstention with releases == cycle serves (oldest first)
        instead of scheduling a retry."""
        system, controller = self._throttled_system([10_000, 10_000])
        controller.throttle_release = lambda request, cycle: cycle
        system._schedulers = [
            _AbstainingScheduler() for _ in system._schedulers
        ]
        system._bank_event(0, 100)
        assert system._core_served[0] == 1  # oldest arrival won the tie
        assert len(controller.queue) == 1


class TestSingleRequestFastPath:
    class _ExplodingScheduler:
        """pick() must not be consulted for a single-candidate queue."""

        name = "exploding"

        def pick(self, queue, open_row, cycle, release_of):
            raise AssertionError("pick called for single-request queue")

        def on_served(self, core, cycle, contended=True):
            self.served = (core, contended)

    def test_single_request_skips_scheduler_pick(self):
        system = SimulatedSystem(_traces(num_cores=1, requests=1))
        scheduler = self._ExplodingScheduler()
        system._schedulers = [scheduler for _ in system._schedulers]
        result = system.run()
        assert system._core_served[0] == 1
        # A lone request is by definition uncontended (BLISS must not
        # build a blacklist streak from it).
        assert scheduler.served == (0, False)
        assert result.total_cycles > 0


class TestSimulateEntryPoint:
    def test_simulate_runs_once(self):
        result = simulate(_traces(num_cores=1, requests=4))
        assert result.total_cycles > 0
        assert result.per_core_instructions == [8]
