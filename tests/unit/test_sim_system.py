"""Unit tests for event-loop details of the simulated system.

The end-to-end behavior is covered by the integration and property
suites; these tests pin down the bank-event scheduling corner cases.
"""

from repro.sim.system import SimulatedSystem, simulate
from repro.workloads.trace import CoreTrace, TraceEntry


class _AbstainingScheduler:
    """A scheduler that never picks, forcing the fallback path."""

    name = "abstain"

    def pick(self, queue, open_row, cycle, release_of):
        return None

    def on_served(self, core, cycle, contended=True):
        pass


def _traces(num_cores=2, requests=20):
    return [
        CoreTrace(
            name=f"c{core}",
            entries=[
                TraceEntry(gap_cycles=1, bank_index=0, row=i, instructions=2)
                for i in range(requests)
            ],
        )
        for core in range(num_cores)
    ]


class TestSchedulerAbstentionFallback:
    def test_all_requests_complete_without_scheduler(self):
        system = SimulatedSystem(_traces())
        system._schedulers = [
            _AbstainingScheduler() for _ in system._schedulers
        ]
        result = system.run()
        assert result.total_cycles > 0
        assert sum(system._core_served) == 2 * 20

    def test_fallback_skips_throttled_head_of_queue(self):
        """A throttled queue[0] must not starve released requests."""
        system = SimulatedSystem(_traces(num_cores=1, requests=2))
        system._schedulers = [
            _AbstainingScheduler() for _ in system._schedulers
        ]
        controller = system.banks[0]
        first = system._make_request(0, 0, system.cores[0].trace.entries[0])
        second = system._make_request(0, 1, system.cores[0].trace.entries[1])
        controller.queue.extend([first, second])

        original = controller.throttle_release

        def throttle(request, cycle):
            if request is first:
                return cycle + 10_000  # head of queue is throttled
            return original(request, cycle)

        controller.throttle_release = throttle
        system._bank_event(0, 100)
        # The released request (index 1) was served; the throttled head
        # is still queued, and a retry is scheduled rather than a spin.
        assert controller.queue == [first]
        assert system._core_served[0] == 1


class TestSimulateEntryPoint:
    def test_simulate_runs_once(self):
        result = simulate(_traces(num_cores=1, requests=4))
        assert result.total_cycles > 0
        assert result.per_core_instructions == [8]
