"""Unit tests for the shared core types."""

import pytest

from repro.types import (
    BankAddress,
    CommandKind,
    EnergyCounts,
    MemoryRequest,
    PreventiveRefresh,
    RowAddress,
    SchemeLocation,
)


class TestBankAddress:
    def test_flat_index_layout(self):
        bank = BankAddress(channel=1, rank=0, bank=5)
        assert bank.flat_index(ranks_per_channel=1, banks_per_rank=32) == 37

    def test_flat_index_unique_over_system(self):
        seen = set()
        for channel in range(2):
            for rank in range(2):
                for bank in range(8):
                    seen.add(
                        BankAddress(channel, rank, bank).flat_index(2, 8)
                    )
        assert len(seen) == 32

    def test_ordering(self):
        assert BankAddress(0, 0, 1) < BankAddress(0, 0, 2)
        assert BankAddress(0, 1, 0) < BankAddress(1, 0, 0)


class TestRowAddress:
    def test_equality_and_hash(self):
        a = RowAddress(BankAddress(0, 0, 1), 100)
        b = RowAddress(BankAddress(0, 0, 1), 100)
        assert a == b
        assert hash(a) == hash(b)

    def test_neighbor_preserves_bank(self):
        row = RowAddress(BankAddress(1, 0, 2), 50)
        neighbor = row.neighbor(1, 65536)
        assert neighbor.bank == row.bank
        assert neighbor.row == 51


class TestMemoryRequest:
    def test_read_write_flags(self):
        read = MemoryRequest(0, 0, RowAddress(BankAddress(0, 0, 0), 1))
        write = MemoryRequest(
            0, 0, RowAddress(BankAddress(0, 0, 0), 1), is_write=True
        )
        assert read.is_read and not write.is_read

    def test_completion_initially_none(self):
        request = MemoryRequest(0, 0, RowAddress(BankAddress(0, 0, 0), 1))
        assert request.completion_cycle is None


class TestPreventiveRefresh:
    def test_defaults(self):
        refresh = PreventiveRefresh(cycle=10, victims=(1, 3))
        assert refresh.trigger is CommandKind.RFM
        assert refresh.aggressor is None


class TestEnums:
    def test_command_kinds(self):
        assert CommandKind.RFM.value == "RFM"
        assert CommandKind.ARR.value == "ARR"

    def test_scheme_locations(self):
        assert SchemeLocation.DRAM.value == "dram"
        assert SchemeLocation.BUFFER_CHIP.value == "buffer-chip"


class TestEnergyCountsMergeIdentity:
    def test_merge_with_empty_is_identity(self):
        counts = EnergyCounts(acts=3, rfm_commands=2, mrr_commands=1)
        merged = counts.merged(EnergyCounts())
        assert merged == counts
