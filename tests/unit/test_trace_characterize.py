"""Unit tests: ACT-stream characterization metrics (exact values)."""

import pytest

from repro.traces import (
    characterize_trace,
    characterize_traceset,
    characterize_workload,
)
from repro.traces.ingest import TraceSet
from repro.workloads.trace import CoreTrace, TraceEntry


def _entries(locations, writes=None, instructions=10):
    writes = writes or [False] * len(locations)
    return [
        TraceEntry(gap_cycles=0, bank_index=bank, row=row, column=0,
                   is_write=w, instructions=instructions)
        for (bank, row), w in zip(locations, writes)
    ]


class TestSingleTraceMetrics:
    def test_bursts_and_act_per_access(self):
        # two bursts of 2 on (0,1), then (0,2), then (1,5): bursts
        # [2, 1, 1]; open-row misses at indices 0, 2, 3.
        trace = CoreTrace("t", _entries([(0, 1), (0, 1), (0, 2), (1, 5)]))
        char = characterize_trace(trace)
        assert char.requests == 4
        assert char.act_per_access == pytest.approx(3 / 4)
        assert char.mean_burst_length == pytest.approx(4 / 3)
        assert char.max_burst_length == 2
        # CDF: bursts <=1 carry 2 requests; <=2 carries all 4.
        assert char.row_locality_cdf[1] == pytest.approx(0.5)
        assert char.row_locality_cdf[2] == pytest.approx(1.0)

    def test_hot_row_shares_and_footprint(self):
        trace = CoreTrace(
            "t", _entries([(0, 1)] * 6 + [(0, 2)] * 3 + [(1, 7)])
        )
        char = characterize_trace(trace)
        assert char.footprint_rows == 3
        assert char.hot_row_top1_share == pytest.approx(0.6)
        assert char.hot_row_top8_share == pytest.approx(1.0)

    def test_bank_imbalance_and_channel_share(self):
        # banks 0 and 32 sit in different channels of the default
        # organization (32 banks per channel).
        trace = CoreTrace("t", _entries([(0, 1)] * 3 + [(32, 1)]))
        char = characterize_trace(trace)
        assert char.banks_touched == 2
        assert char.bank_imbalance == pytest.approx(3 / 2)
        assert char.channel_share_top == pytest.approx(0.75)

    def test_mpki_and_write_fraction(self):
        trace = CoreTrace(
            "t",
            _entries([(0, 1), (0, 2)], writes=[True, False],
                     instructions=500),
        )
        char = characterize_trace(trace)
        assert char.total_instructions == 1000
        assert char.mpki_proxy == pytest.approx(2.0)
        assert char.write_fraction == pytest.approx(0.5)

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError, match="no requests"):
            characterize_trace(CoreTrace("empty", []))


class TestWorkloadMerge:
    def test_round_robin_interleaving_breaks_bursts(self):
        # each core bursts on its own row; merged round-robin the
        # stream alternates between them, so merged bursts are 1.
        a = CoreTrace("a", _entries([(0, 1)] * 4))
        b = CoreTrace("b", _entries([(0, 2)] * 4))
        merged = characterize_workload([a, b])
        assert merged.requests == 8
        assert merged.mean_burst_length == pytest.approx(1.0)
        assert characterize_trace(a).mean_burst_length == pytest.approx(4.0)

    def test_traceset_characterization(self):
        traceset = TraceSet(
            name="ts",
            traces=[CoreTrace("a", _entries([(0, 1), (0, 2)])),
                    CoreTrace("b", _entries([(1, 1)]))],
        )
        aggregate, per_core = characterize_traceset(traceset)
        assert aggregate.name == "ts"
        assert aggregate.requests == 3
        assert [c.name for c in per_core] == ["a", "b"]

    def test_summary_is_json_scalars(self):
        char = characterize_trace(CoreTrace("t", _entries([(0, 1)])))
        summary = char.summary()
        assert summary["requests"] == 1
        import json

        json.dumps(summary)  # must be serializable as-is

    def test_hottest_row_share_alias(self):
        char = characterize_trace(
            CoreTrace("t", _entries([(0, 1), (0, 1), (0, 2)]))
        )
        assert char.hottest_row_share == char.hot_row_top1_share
