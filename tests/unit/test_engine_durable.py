"""Durable JSON records: seals, atomic writes, quarantine.

The write path must guarantee "previous contents or new contents,
never a torn file"; the read path must turn every corruption mode —
truncation, bit rot, foreign payloads — into a quarantine + miss, not
an exception mid-campaign.  The injected torn/corrupt writes exercise
the exact window the atomic protocol protects.
"""

import json

import pytest

from repro.engine.durable import (
    QUARANTINE_DIR,
    QUARANTINE_LOG,
    SEAL_KEY,
    CorruptEntryError,
    atomic_write_json,
    is_sealed_ok,
    payload_checksum,
    quarantine_file,
    quarantine_log,
    read_json_verified,
    seal,
)
from repro.faults import FAULT_PLAN_ENV


class TestSeal:
    def test_seal_roundtrip(self):
        record = seal({"a": 1, "b": [2, 3]})
        assert record[SEAL_KEY] == payload_checksum(record)
        assert is_sealed_ok(record)

    def test_tamper_breaks_the_seal(self):
        record = seal({"a": 1})
        record["a"] = 2
        assert not is_sealed_ok(record)

    def test_legacy_records_without_seal_pass(self):
        assert is_sealed_ok({"a": 1})

    def test_checksum_ignores_the_seal_field(self):
        record = {"a": 1}
        assert payload_checksum(record) == payload_checksum(seal(record))


class TestReadVerified:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "entry.json"
        atomic_write_json(path, seal({"x": 41}))
        assert read_json_verified(path)["x"] == 41

    def test_missing_file_is_not_corruption(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_json_verified(tmp_path / "absent.json")

    @pytest.mark.parametrize("text", [
        "",                       # empty
        '{"a": 1',                # truncated JSON
        "[1, 2, 3]",              # non-object
        "not json at all",
    ])
    def test_unparsable_content_is_corrupt(self, tmp_path, text):
        path = tmp_path / "entry.json"
        path.write_text(text)
        with pytest.raises(CorruptEntryError):
            read_json_verified(path)

    def test_failed_seal_is_corrupt(self, tmp_path):
        path = tmp_path / "entry.json"
        record = seal({"x": 1})
        record["x"] = 2
        path.write_text(json.dumps(record))
        with pytest.raises(CorruptEntryError):
            read_json_verified(path)


class TestAtomicWrite:
    def test_overwrites_atomically_leaving_no_temp(self, tmp_path):
        path = tmp_path / "entry.json"
        atomic_write_json(path, {"v": 1})
        atomic_write_json(path, {"v": 2})
        assert json.loads(path.read_text())["v"] == 2
        assert list(tmp_path.glob("*.tmp.*")) == []

    def test_injected_torn_write_truncates_final_path(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(FAULT_PLAN_ENV, json.dumps({
            "faults": [{"site": "test.write", "kind": "torn",
                        "times": 1}],
        }))
        path = tmp_path / "entry.json"
        atomic_write_json(path, seal({"x": 1}), fault_site="test.write")
        with pytest.raises(CorruptEntryError):
            read_json_verified(path)
        # budget spent: the next write is clean
        atomic_write_json(path, seal({"x": 2}), fault_site="test.write")
        assert read_json_verified(path)["x"] == 2

    def test_injected_corrupt_write_fails_the_seal(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(FAULT_PLAN_ENV, json.dumps({
            "faults": [{"site": "test.write", "kind": "corrupt",
                        "times": 1}],
        }))
        path = tmp_path / "entry.json"
        atomic_write_json(path, seal({"x": 1}), fault_site="test.write")
        # valid JSON on disk — the seal is what catches it
        assert isinstance(json.loads(path.read_text()), dict)
        with pytest.raises(CorruptEntryError):
            read_json_verified(path)

    def test_unrelated_site_does_not_fire(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, json.dumps({
            "faults": [{"site": "other.site", "kind": "torn"}],
        }))
        path = tmp_path / "entry.json"
        atomic_write_json(path, seal({"x": 1}), fault_site="test.write")
        assert read_json_verified(path)["x"] == 1


class TestQuarantine:
    def test_move_and_log(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("garbage")
        target = quarantine_file(path, "torn by test")
        assert not path.exists()
        assert target == tmp_path / QUARANTINE_DIR / "bad.json"
        assert target.read_text() == "garbage"
        records = quarantine_log(tmp_path)
        assert len(records) == 1
        assert records[0]["file"] == "bad.json"
        assert records[0]["reason"] == "torn by test"

    def test_name_collisions_get_suffixes(self, tmp_path):
        for content in ("one", "two"):
            path = tmp_path / "bad.json"
            path.write_text(content)
            quarantine_file(path, "again")
        names = sorted(
            p.name for p in (tmp_path / QUARANTINE_DIR).iterdir()
            if p.name != QUARANTINE_LOG
        )
        assert names == ["bad.json", "bad.json.1"]

    def test_explicit_root_pools_quarantine(self, tmp_path):
        shard = tmp_path / "ab"
        shard.mkdir()
        path = shard / "bad.json"
        path.write_text("x")
        target = quarantine_file(path, "why", root=tmp_path)
        assert target.parent == tmp_path / QUARANTINE_DIR

    def test_missing_file_returns_none(self, tmp_path):
        assert quarantine_file(tmp_path / "absent.json", "?") is None
