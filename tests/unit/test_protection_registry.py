"""Unit tests for the scheme registry and base protocol."""

import pytest

from repro.core.mithril import MithrilScheme
from repro.protection import (
    NoProtection,
    ProtectionScheme,
    build_scheme,
    register_scheme,
    scheme_names,
)


class TestRegistry:
    def test_all_paper_schemes_registered(self):
        names = scheme_names()
        for expected in (
            "mithril", "mithril+", "para", "parfm", "graphene",
            "rfm-graphene", "twice", "cbt", "blockhammer", "none",
        ):
            assert expected in names

    def test_build_scheme_with_kwargs(self):
        scheme = build_scheme("mithril", n_entries=32, rfm_th=16)
        assert isinstance(scheme, MithrilScheme)
        assert scheme.table.n_entries == 32

    def test_unknown_scheme_raises_with_hint(self):
        with pytest.raises(KeyError, match="unknown scheme"):
            build_scheme("shield-o-matic")

    def test_register_decorator(self):
        @register_scheme("test-dummy")
        class Dummy(NoProtection):
            pass

        assert "test-dummy" in scheme_names()
        assert isinstance(build_scheme("test-dummy"), Dummy)


class TestBaseDefaults:
    def test_no_protection_does_nothing(self):
        scheme = NoProtection()
        assert scheme.on_activate(5, 0) == []
        assert scheme.on_rfm(0) == []
        assert scheme.rfm_needed_flag()
        assert scheme.throttle_release(5, 42) == 42
        assert scheme.table_entries() == 0

    def test_stats_initialized(self):
        scheme = NoProtection()
        assert scheme.stats.acts_observed == 0
        scheme.on_activate(1, 0)
        assert scheme.stats.acts_observed == 1

    def test_name_property(self):
        assert NoProtection().name == "NoProtection"
