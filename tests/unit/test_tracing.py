"""Unit tests for command-level tracing."""

import pytest

from repro.core.mithril import MithrilScheme
from repro.params import SystemConfig
from repro.sim.system import SimulatedSystem
from repro.sim.tracing import CommandTracer, TracedCommand, attach_tracer
from repro.types import CommandKind
from repro.workloads.synthetic import random_access_trace


def _run_traced(scheme_factory=None, rfm_th=0, tracer=None):
    config = SystemConfig().with_organization(channels=1, banks_per_rank=4)
    traces = [random_access_trace(num_requests=300, num_banks=4, seed=9)]
    system = SimulatedSystem(
        traces, scheme_factory=scheme_factory, config=config, rfm_th=rfm_th
    )
    tracer = attach_tracer(system, tracer)
    result = system.run()
    return tracer, result


class TestCommandTracer:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            CommandTracer(capacity=0)

    def test_capacity_bound(self):
        tracer = CommandTracer(capacity=2)
        for i in range(5):
            tracer.record(i, 0, CommandKind.ACT, row=i)
        assert len(tracer) == 2
        assert tracer.dropped == 3

    def test_counts_by_kind(self):
        tracer = CommandTracer()
        tracer.record(0, 0, CommandKind.ACT, row=1)
        tracer.record(1, 0, CommandKind.RFM)
        tracer.record(2, 1, CommandKind.ACT, row=2)
        counts = tracer.counts_by_kind()
        assert counts[CommandKind.ACT] == 2
        assert counts[CommandKind.RFM] == 1

    def test_per_bank_filter(self):
        tracer = CommandTracer()
        tracer.record(0, 0, CommandKind.ACT, row=1)
        tracer.record(1, 3, CommandKind.ACT, row=2)
        assert len(tracer.per_bank(3)) == 1

    def test_ordering_check(self):
        tracer = CommandTracer()
        tracer.record(5, 0, CommandKind.ACT)
        tracer.record(3, 0, CommandKind.ACT)
        assert not tracer.verify_ordering()

    def test_summary_without_overflow(self):
        tracer = CommandTracer()
        tracer.record(0, 0, CommandKind.ACT, row=1)
        tracer.record(1, 0, CommandKind.RFM)
        summary = tracer.summary()
        assert summary["total"] == 2
        assert summary["recorded"] == 2
        assert summary["dropped"] == 0
        assert not summary["truncated"]
        assert summary["by_kind"] == {"ACT": 1, "RFM": 1}

    def test_summary_accounts_for_capacity_overflow(self):
        tracer = CommandTracer(capacity=3)
        for i in range(10):
            tracer.record(i, 0, CommandKind.ACT, row=i)
        tracer.record(10, 0, CommandKind.REF)  # also dropped
        summary = tracer.summary()
        assert summary["total"] == 11
        assert summary["recorded"] == 3
        assert summary["dropped"] == 8
        assert summary["capacity"] == 3
        assert summary["truncated"]
        # by_kind covers only what was recorded: the REF never landed.
        assert summary["by_kind"] == {"ACT": 3}
        assert len(tracer) == 3


class TestAttachedTracing:
    def test_acts_recorded_match_result(self):
        tracer, result = _run_traced()
        counts = tracer.counts_by_kind()
        assert counts.get(CommandKind.ACT, 0) == result.acts

    def test_rfm_cadence_matches_threshold(self):
        rfm_th = 8
        tracer, result = _run_traced(
            scheme_factory=lambda: MithrilScheme(n_entries=8, rfm_th=rfm_th),
            rfm_th=rfm_th,
        )
        assert result.rfm_commands > 0
        for bank in range(4):
            for cadence in tracer.rfm_cadence(bank):
                assert cadence == rfm_th

    def test_commands_cycle_ordered_per_bank(self):
        tracer, _result = _run_traced()
        assert tracer.verify_ordering()

    def test_refresh_commands_recorded(self):
        tracer, result = _run_traced()
        counts = tracer.counts_by_kind()
        assert counts.get(CommandKind.REF, 0) == result.energy.auto_refreshes


class TestTracingUnderProbeLoad:
    """The tracer and the probe layer wrap the same serve path; both
    must keep exact accounting when attached to the same run."""

    def _probed_run(self, tmp_path, monkeypatch, tracer=None):
        monkeypatch.setenv("REPRO_PROBES", str(tmp_path / "probes"))
        # dense sampling: probe-volume load on the instrumented path
        monkeypatch.setenv("REPRO_PROBE_INTERVAL", "500")
        return _run_traced(
            scheme_factory=lambda: MithrilScheme(n_entries=8, rfm_th=8),
            rfm_th=8,
            tracer=tracer,
        )

    def test_overflow_accounting_exact_with_probes(self, tmp_path,
                                                   monkeypatch):
        capacity = 16
        tracer, result = self._probed_run(
            tmp_path, monkeypatch, tracer=CommandTracer(capacity=capacity)
        )
        summary = tracer.summary()
        assert summary["truncated"]
        assert summary["recorded"] == capacity
        assert summary["total"] == summary["recorded"] + summary["dropped"]
        assert len(tracer) == capacity
        # probe sampling must not inject commands into the trace:
        # an unbounded tracer on the identical probed run sees exactly
        # the commands the result accounts for.
        full, full_result = self._probed_run(tmp_path, monkeypatch)
        assert full_result == result
        assert full.summary()["total"] == summary["total"]
        counts = full.counts_by_kind()
        assert counts.get(CommandKind.ACT, 0) == full_result.acts
        assert counts.get(CommandKind.RFM, 0) == full_result.rfm_commands

    def test_probe_stream_sealed_alongside_tracer(self, tmp_path,
                                                  monkeypatch):
        from repro.sim.probes import probe_files, read_probe_stream

        self._probed_run(tmp_path, monkeypatch)
        [path] = probe_files(tmp_path / "probes")
        records, sealed = read_probe_stream(path)
        assert sealed
        assert sum(1 for r in records if r.get("k") == "sample") > 0
