"""Unit tests for the per-bank timing state machine."""

import pytest

from repro.dram.bank import BankTimingModel, FawTracker
from repro.params import DramTimings


@pytest.fixture
def bank(timings):
    return BankTimingModel(timings)


class TestRowBufferBehaviour:
    def test_first_access_activates(self, bank):
        result = bank.serve_access(row=5, cycle=0)
        assert result.activated
        assert not result.row_hit
        assert bank.open_row == 5

    def test_second_access_same_row_hits(self, bank):
        bank.serve_access(row=5, cycle=0)
        result = bank.serve_access(row=5, cycle=bank.ready_cycle)
        assert result.row_hit
        assert not result.activated

    def test_conflict_precharges(self, bank):
        bank.serve_access(row=5, cycle=0)
        result = bank.serve_access(row=9, cycle=bank.ready_cycle)
        assert result.precharged
        assert result.activated
        assert bank.open_row == 9

    def test_close_after_precharges(self, bank):
        result = bank.serve_access(row=5, cycle=0, close_after=True)
        assert result.precharged
        assert bank.open_row is None

    def test_row_hit_faster_than_miss(self, timings):
        hit_bank = BankTimingModel(timings)
        hit_bank.serve_access(row=1, cycle=0)
        start = hit_bank.ready_cycle
        hit = hit_bank.serve_access(row=1, cycle=start)

        miss_bank = BankTimingModel(timings)
        miss_bank.serve_access(row=1, cycle=0)
        miss = miss_bank.serve_access(row=2, cycle=start)
        assert hit.data_cycle < miss.data_cycle


class TestTimingConstraints:
    def test_trc_spacing_between_acts(self, bank, timings):
        first = bank.serve_access(row=1, cycle=0)
        second = bank.serve_access(row=2, cycle=first.ready_cycle)
        # The second ACT cannot be earlier than tRC after the first.
        assert second.data_cycle - first.start_cycle >= timings.trc_cycles

    def test_act_not_before_honored(self, bank):
        result = bank.serve_access(row=1, cycle=0, act_not_before=500)
        assert result.data_cycle > 500

    def test_bus_contention_delays_data(self, bank):
        result = bank.serve_access(row=1, cycle=0, bus_free_cycle=10_000)
        assert result.data_cycle > 10_000

    def test_block_for_delays_next_access(self, bank, timings):
        bank.serve_access(row=1, cycle=0)
        freed = bank.block_for(bank.ready_cycle, 1000)
        result = bank.serve_access(row=2, cycle=0)
        assert result.start_cycle >= freed - 1000  # started after the block

    def test_block_for_closes_row(self, bank):
        bank.serve_access(row=1, cycle=0)
        bank.block_for(bank.ready_cycle, 100)
        assert bank.open_row is None

    def test_activate_only_counts_act(self, bank):
        before = bank.act_count
        bank.activate_only(row=7, cycle=0)
        assert bank.act_count == before + 1
        assert bank.open_row == 7


class TestFawTracker:
    def test_first_four_acts_unconstrained(self):
        faw = FawTracker(tfaw_cycles=32)
        for t in (0, 1, 2, 3):
            assert faw.earliest_act(t) == t
            faw.record_act(t)

    def test_fifth_act_waits(self):
        faw = FawTracker(tfaw_cycles=32)
        for t in range(4):
            faw.record_act(t)
        assert faw.earliest_act(4) == 32  # 0 + tFAW

    def test_window_slides(self):
        faw = FawTracker(tfaw_cycles=32)
        for t in (0, 10, 20, 30):
            faw.record_act(t)
        assert faw.earliest_act(31) == 32
        faw.record_act(32)
        # window is now (10,20,30,32): next act >= 10+32
        assert faw.earliest_act(33) == 42

    def test_bank_uses_faw(self, timings):
        faw = FawTracker(timings.cycles(timings.tfaw))
        bank = BankTimingModel(timings, faw=faw)
        # Exhaust the window through the shared tracker.
        for t in range(4):
            faw.record_act(t)
        result = bank.serve_access(row=1, cycle=4)
        assert result.data_cycle >= timings.cycles(timings.tfaw)


class TestStatistics:
    def test_counts(self, bank):
        bank.serve_access(row=1, cycle=0)
        bank.serve_access(row=1, cycle=bank.ready_cycle)
        bank.serve_access(row=2, cycle=bank.ready_cycle)
        assert bank.access_count == 3
        assert bank.act_count == 2
        assert bank.pre_count == 1
