"""Unit tests for the estimate-growth measurement harness."""

import pytest

from repro.core.mithril import MithrilScheme
from repro.verify.theorem import GrowthReport, measure_estimate_growth


def _scheme(**kwargs) -> MithrilScheme:
    kwargs.setdefault("n_entries", 8)
    kwargs.setdefault("rfm_th", 4)
    kwargs.setdefault("counter_bits", 62)
    return MithrilScheme(**kwargs)


class TestMeasureEstimateGrowth:
    def test_empty_stream(self):
        report = measure_estimate_growth(_scheme(), iter(()))
        assert report.acts_replayed == 0
        assert report.max_growth == 0.0

    def test_single_row_growth_capped_by_demote(self):
        """Hammering one row: every RFM demotes it, so growth within
        a window stays around RFM_TH."""
        report = measure_estimate_growth(
            _scheme(), iter([7] * 400), window_acts=400
        )
        assert report.max_growth <= 2 * 4 + 1  # ~RFM_TH scale

    def test_growth_reported_for_hot_row(self):
        report = measure_estimate_growth(
            _scheme(rfm_th=64), iter([5] * 50), window_acts=100
        )
        assert report.max_growth == 50 - 1  # estimate rose 1 -> 50
        assert report.max_growth_row == 5

    def test_max_acts_truncates(self):
        report = measure_estimate_growth(
            _scheme(), iter([1, 2] * 1000), max_acts=10
        )
        assert report.acts_replayed == 10

    def test_report_properties(self):
        report = GrowthReport(
            n_entries=8, rfm_th=4, adaptive_th=0, window_acts=100,
            acts_replayed=100, max_growth=5.0, max_growth_row=1,
            theorem_bound=10.0,
        )
        assert report.within_bound
        assert report.tightness == pytest.approx(0.5)

    def test_zero_bound_tightness(self):
        report = GrowthReport(
            n_entries=8, rfm_th=4, adaptive_th=0, window_acts=1,
            acts_replayed=0, max_growth=0.0, max_growth_row=None,
            theorem_bound=0.0,
        )
        assert report.tightness == 0.0
