"""Unit tests: trace formats, readers, mapping, geometry normalization."""

import gzip
import json

import pytest

from repro.params import DEFAULT_CONFIG, DramOrganization
from repro.traces import (
    TraceGeometryError,
    detect_format,
    map_address,
    mapping_names,
    normalize_trace,
    read_trace,
    reader_names,
    write_binary,
)
from repro.traces.readers import read_binary, read_dramsim3_csv
from repro.workloads.synthetic import streaming_sweep_trace
from repro.workloads.trace import CoreTrace, TraceEntry


def _trace(n=40, seed=9):
    return streaming_sweep_trace(num_requests=n, seed=seed)


class TestCoreTraceRoundTrip:
    def test_resave_is_byte_identical(self, tmp_path):
        trace = _trace()
        first, second = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        trace.save(first)
        CoreTrace.load(first).save(second)
        assert first.read_bytes() == second.read_bytes()

    def test_gzip_round_trip(self, tmp_path):
        trace = _trace()
        path = tmp_path / "trace.jsonl.gz"
        trace.save(path)
        assert path.read_bytes()[:2] == b"\x1f\x8b"  # really gzipped
        loaded = CoreTrace.load(path)
        assert loaded.entries == trace.entries
        assert loaded.name == trace.name

    def test_gzip_resave_is_byte_identical(self, tmp_path):
        """mtime=0 in the gzip header keeps re-saves reproducible."""
        trace = _trace()
        first, second = tmp_path / "a.jsonl.gz", tmp_path / "b.jsonl.gz"
        trace.save(first)
        CoreTrace.load(first).save(second)
        assert first.read_bytes() == second.read_bytes()


class TestReaderRegistry:
    def test_registry_lists_all_shipped_formats(self):
        assert reader_names() == ["binary", "dramsim3-csv", "jsonl"]

    def test_unknown_format_raises(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _trace().save(path)
        with pytest.raises(KeyError, match="unknown trace format"):
            read_trace(path, format="no-such-format")

    @pytest.mark.parametrize("compress", [False, True])
    def test_binary_round_trip(self, tmp_path, compress):
        trace = _trace()
        path = tmp_path / ("t.bin.gz" if compress else "t.bin")
        write_binary(trace, path)
        loaded = read_binary(path)
        assert loaded.name == trace.name
        assert loaded.memory_intensive == trace.memory_intensive
        assert loaded.entries == trace.entries

    def test_binary_rewrite_is_byte_identical(self, tmp_path):
        trace = _trace()
        first, second = tmp_path / "a.bin.gz", tmp_path / "b.bin.gz"
        write_binary(trace, first)
        write_binary(read_binary(first), second)
        assert first.read_bytes() == second.read_bytes()

    def test_binary_rejects_wrong_magic(self, tmp_path):
        path = tmp_path / "t.bin"
        path.write_bytes(b"NOTATRACE")
        with pytest.raises(ValueError, match="magic"):
            read_binary(path)

    def test_binary_rejects_truncated_columns(self, tmp_path):
        path = tmp_path / "t.bin"
        write_binary(_trace(), path)
        path.write_bytes(path.read_bytes()[:-16])
        with pytest.raises(ValueError, match="truncated"):
            read_binary(path)

    def test_detect_format(self, tmp_path):
        jsonl, binary, csv = (
            tmp_path / "a.jsonl", tmp_path / "b.bin.gz", tmp_path / "c.csv"
        )
        _trace().save(jsonl)
        write_binary(_trace(), binary)
        csv.write_text("0x40,10,READ\n")
        assert detect_format(jsonl) == "jsonl"
        assert detect_format(binary) == "binary"
        assert detect_format(csv) == "dramsim3-csv"

    def test_detect_format_empty_file(self, tmp_path):
        path = tmp_path / "empty"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            detect_format(path)

    def test_read_trace_auto_detects(self, tmp_path):
        path = tmp_path / "t.bin"
        write_binary(_trace(), path)
        assert read_trace(path).entries == _trace().entries


class TestDramsim3Csv:
    def test_parses_gaps_ops_and_headers(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text(
            "addr,cycle,op\n"
            "# a comment\n"
            "0x00000040,100,READ\n"
            "128,140,W\n"
            "0x80,130,WRITE\n"   # out-of-order stamp clamps to gap 0
        )
        trace = read_dramsim3_csv(path)
        assert [e.gap_cycles for e in trace.entries] == [0, 40, 0]
        assert [e.is_write for e in trace.entries] == [False, True, True]
        assert trace.entries[0].instructions == 1

    def test_uses_mapping_policy(self, tmp_path):
        org = DEFAULT_CONFIG.organization
        address = 5 * org.cacheline_bytes  # block 5: bank 0, column 5
        path = tmp_path / "log.csv"
        path.write_text(f"{address},0,READ\n")
        trace = read_dramsim3_csv(path, mapping="row-bank-col")
        assert (trace.entries[0].bank_index, trace.entries[0].row,
                trace.entries[0].column) == (0, 0, 5)

    def test_rejects_garbage(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text("0x40,100\n")
        with pytest.raises(ValueError, match="addr,cycle,op"):
            read_dramsim3_csv(path)
        path.write_text("0x40,100,FLUSH\n")
        with pytest.raises(ValueError, match="unknown op"):
            read_dramsim3_csv(path)

    def test_gzip_input(self, tmp_path):
        path = tmp_path / "log.csv.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("0x40,10,READ\n0x80,25,WRITE\n")
        trace = read_dramsim3_csv(path)
        assert len(trace.entries) == 2
        assert trace.entries[1].gap_cycles == 15


class TestMappingPolicies:
    def test_registry(self):
        assert mapping_names() == ["bank-row-col", "row-bank-col",
                                   "xor-bank"]

    def test_row_bank_col_stripes_banks(self):
        org = DEFAULT_CONFIG.organization
        row_span = org.columns_per_row * org.cacheline_bytes
        a = map_address("row-bank-col", 0, org)
        b = map_address("row-bank-col", row_span, org)
        assert a == (0, 0, 0)
        assert b == (1, 0, 0)  # next row-sized block, next bank

    def test_bank_row_col_keeps_bank_regions(self):
        org = DEFAULT_CONFIG.organization
        row_span = org.columns_per_row * org.cacheline_bytes
        assert map_address("bank-row-col", row_span, org) == (0, 1, 0)

    def test_xor_bank_permutes_within_range(self):
        org = DEFAULT_CONFIG.organization
        row_span = org.columns_per_row * org.cacheline_bytes
        seen = {
            map_address("xor-bank", r * row_span * org.total_banks, org)[0]
            for r in range(8)
        }
        assert all(0 <= bank < org.total_banks for bank in seen)
        assert len(seen) > 1  # the permutation actually moves banks

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            map_address("row-bank-col", -1, DEFAULT_CONFIG.organization)

    def test_unknown_policy(self):
        with pytest.raises(KeyError, match="unknown mapping"):
            map_address("no-such", 0, DEFAULT_CONFIG.organization)


class TestGeometryNormalization:
    def _tiny_org(self):
        return DramOrganization(
            channels=1, ranks_per_channel=1, banks_per_rank=4,
            rows_per_bank=16, row_size_bytes=512, cacheline_bytes=64,
        )

    def test_in_range_trace_is_returned_unchanged(self):
        org = self._tiny_org()
        trace = CoreTrace("t", [TraceEntry(0, bank_index=3, row=15,
                                           column=7)])
        assert normalize_trace(trace, org) is trace

    def test_clamp_wraps_out_of_range(self):
        org = self._tiny_org()
        trace = CoreTrace("t", [TraceEntry(0, bank_index=6, row=21,
                                           column=9)])
        clamped = normalize_trace(trace, org, mode="clamp")
        entry = clamped.entries[0]
        assert (entry.bank_index, entry.row, entry.column) == (2, 5, 1)

    def test_strict_raises_naming_the_offender(self):
        org = self._tiny_org()
        trace = CoreTrace("bad", [
            TraceEntry(0, bank_index=0, row=0),
            TraceEntry(0, bank_index=0, row=99),
        ])
        with pytest.raises(TraceGeometryError, match="entry 1"):
            normalize_trace(trace, org, mode="strict")

    def test_negative_values_error_even_when_clamping(self):
        org = self._tiny_org()
        trace = CoreTrace("bad", [TraceEntry(0, bank_index=-1, row=0)])
        with pytest.raises(TraceGeometryError, match="negative"):
            normalize_trace(trace, org, mode="clamp")

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="clamp"):
            normalize_trace(CoreTrace("t", []), self._tiny_org(),
                            mode="fold")
