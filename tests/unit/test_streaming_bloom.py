"""Unit tests for the counting Bloom filters (BlockHammer's tracker)."""

import pytest

from repro.streaming.counting_bloom import (
    CountingBloomFilter,
    DualCountingBloomFilter,
)


class TestCountingBloomFilter:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CountingBloomFilter(size=0)
        with pytest.raises(ValueError):
            CountingBloomFilter(size=8, num_hashes=0)

    def test_never_underestimates(self):
        cbf = CountingBloomFilter(size=64, num_hashes=4)
        truth = {}
        for i in range(500):
            element = i % 30
            cbf.observe(element)
            truth[element] = truth.get(element, 0) + 1
        for element, count in truth.items():
            assert cbf.estimate(element) >= count

    def test_estimate_of_unseen_zero_when_empty(self):
        cbf = CountingBloomFilter(size=32)
        assert cbf.estimate(12345) == 0

    def test_count_accumulates(self):
        cbf = CountingBloomFilter(size=1024)
        cbf.observe("row", 7)
        assert cbf.estimate("row") >= 7

    def test_reset(self):
        cbf = CountingBloomFilter(size=16)
        cbf.observe("a", 5)
        cbf.reset()
        assert cbf.estimate("a") == 0
        assert cbf.total_observed == 0

    def test_rejects_non_positive_count(self):
        cbf = CountingBloomFilter(size=16)
        with pytest.raises(ValueError):
            cbf.observe("a", 0)

    def test_indices_deterministic(self):
        cbf = CountingBloomFilter(size=64, num_hashes=4, seed=7)
        assert cbf._indices(42) == cbf._indices(42)


class TestDualCountingBloomFilter:
    def test_rejects_tiny_epoch(self):
        with pytest.raises(ValueError):
            DualCountingBloomFilter(size=8, epoch_length=1)

    def test_estimates_cover_recent_history(self):
        dual = DualCountingBloomFilter(size=256, epoch_length=100)
        for _ in range(30):
            dual.observe("hot")
        assert dual.estimate("hot") >= 30

    def test_rotation_forgets_stale_history_eventually(self):
        dual = DualCountingBloomFilter(size=256, epoch_length=20)
        for _ in range(15):
            dual.observe("old")
        # push two half-epochs of other traffic; "old" ages out
        for i in range(25):
            dual.observe(f"noise{i}")
        assert dual.estimate("old") < 15

    def test_never_underestimates_within_half_epoch(self):
        dual = DualCountingBloomFilter(size=512, epoch_length=1000)
        for _ in range(40):
            dual.observe("r")
        assert dual.estimate("r") >= 40

    def test_reset(self):
        dual = DualCountingBloomFilter(size=64, epoch_length=10)
        dual.observe("a", 5)
        dual.reset()
        assert dual.estimate("a") == 0
