"""Unit tests for the DDR5 parameter set (Table III)."""

import pytest

from repro.params import (
    BLOCKHAMMER_CONFIGS,
    DEFAULT_CONFIG,
    DramOrganization,
    DramTimings,
    MITHRIL_DEFAULT_RFM_TH,
    PAPER_FLIP_THRESHOLDS,
)


class TestDramTimings:
    def test_table_iii_values(self, timings):
        assert timings.trfc == pytest.approx(295.0)
        assert timings.trc == pytest.approx(48.64)
        assert timings.trfm == pytest.approx(97.28)
        assert timings.trcd == timings.trp == timings.tcl == pytest.approx(16.64)
        assert timings.trefw == pytest.approx(32e6)
        assert timings.trefi == pytest.approx(32e6 / 8192)

    def test_trfm_is_twice_trc(self, timings):
        assert timings.trfm == pytest.approx(2 * timings.trc)

    def test_cycles_rounds_up(self, timings):
        assert timings.cycles(timings.tck) == 1
        assert timings.cycles(timings.tck * 1.5) == 2
        assert timings.cycles(0.0) == 0

    def test_acts_per_trefw_scale(self, timings):
        acts = timings.acts_per_trefw()
        # ~608k for DDR5-4800 with tRFC=295ns/tREFI=3.9us
        assert 550_000 < acts < 700_000

    def test_rfm_intervals_decrease_with_rfm_th(self, timings):
        w_values = [timings.rfm_intervals_per_trefw(r) for r in (16, 64, 256)]
        assert w_values == sorted(w_values, reverse=True)

    def test_rfm_intervals_rejects_bad_rfm_th(self, timings):
        with pytest.raises(ValueError):
            timings.rfm_intervals_per_trefw(0)


class TestDramOrganization:
    def test_total_banks(self, organization):
        assert organization.total_banks == 64  # 2ch x 1rank x 32banks

    def test_columns_per_row(self, organization):
        assert organization.columns_per_row == 128  # 8KB row / 64B line

    def test_rows_per_refresh_group(self, organization):
        assert organization.rows_per_refresh_group == 8  # 65536 / 8192


class TestSystemConfig:
    def test_defaults_match_paper(self):
        assert DEFAULT_CONFIG.num_cores == 16
        assert DEFAULT_CONFIG.scheduler == "bliss"
        assert DEFAULT_CONFIG.page_policy == "minimalist-open"

    def test_with_timings_returns_new_config(self):
        modified = DEFAULT_CONFIG.with_timings(trc=50.0)
        assert modified.timings.trc == 50.0
        assert DEFAULT_CONFIG.timings.trc == pytest.approx(48.64)

    def test_with_organization(self):
        modified = DEFAULT_CONFIG.with_organization(channels=1)
        assert modified.organization.channels == 1


class TestPaperConstants:
    def test_flip_thresholds(self):
        assert PAPER_FLIP_THRESHOLDS == (50_000, 25_000, 12_500, 6_250, 3_125, 1_500)

    def test_blockhammer_configs_cover_all_thresholds(self):
        assert set(BLOCKHAMMER_CONFIGS) == set(PAPER_FLIP_THRESHOLDS)

    def test_mithril_rfm_th_defaults(self):
        assert MITHRIL_DEFAULT_RFM_TH[50_000] == 256
        assert MITHRIL_DEFAULT_RFM_TH[1_500] == 32
