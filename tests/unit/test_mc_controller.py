"""Unit tests for the per-bank controller (the MC-DRAM cooperation)."""

import pytest

from repro.core.mithril import MithrilScheme
from repro.mc.controller import BankController
from repro.mitigations.graphene import GrapheneScheme
from repro.params import SystemConfig
from repro.types import BankAddress, MemoryRequest, RowAddress


def _request(row: int, arrival: int = 0, write: bool = False) -> MemoryRequest:
    return MemoryRequest(
        core=0, arrival_cycle=arrival,
        address=RowAddress(BankAddress(0, 0, 0), row), is_write=write,
    )


@pytest.fixture
def config():
    return SystemConfig().with_organization(channels=1, banks_per_rank=8)


class TestBasicServing:
    def test_serve_sets_completion(self, config):
        controller = BankController(config)
        request = _request(10)
        result = controller.serve(request, cycle=0)
        assert request.completion_cycle == result.data_cycle

    def test_energy_counts_reads_writes(self, config):
        controller = BankController(config)
        controller.serve(_request(10), 0)
        controller.serve(_request(11, write=True), controller.bank.ready_cycle)
        assert controller.energy.reads == 1
        assert controller.energy.writes == 1
        assert controller.energy.acts == 2

    def test_hammer_tracks_activations(self, config):
        controller = BankController(config, flip_th=1000)
        controller.serve(_request(10), 0)
        assert controller.hammer.disturbance(9) == 1.0

    def test_track_hammer_disabled(self, config):
        controller = BankController(config, track_hammer=False)
        controller.serve(_request(10), 0)
        assert controller.hammer is None
        assert controller.flip_count == 0


class TestAutoRefreshIntegration:
    def test_refresh_applied_lazily(self, config):
        controller = BankController(config)
        trefi = controller.refresh.trefi_cycles
        controller.serve(_request(10), trefi * 3)
        assert controller.energy.auto_refreshes == 3
        assert controller.refresh_stall_cycles > 0

    def test_refresh_clears_hammer_rows(self, config):
        controller = BankController(config, flip_th=1000)
        controller.serve(_request(1), 0)  # disturbs rows 0 and 2
        trefi = controller.refresh.trefi_cycles
        # first refresh tick covers group 0 = rows 0..7
        controller.serve(_request(100), trefi)
        assert controller.hammer.disturbance(0) == 0.0
        assert controller.hammer.disturbance(2) == 0.0


class TestRfmIntegration:
    def test_rfm_issued_at_threshold(self, config):
        controller = BankController(
            config,
            scheme=MithrilScheme(n_entries=8, rfm_th=4),
            rfm_th=4,
        )
        cycle = 0
        for i in range(8):
            controller.serve(_request(i * 2), cycle)
            cycle = controller.bank.ready_cycle
        assert controller.rfm_logic.rfm_issued == 2
        assert controller.energy.rfm_commands == 2
        assert controller.rfm_stall_cycles > 0

    def test_rfm_refreshes_victims_in_hammer(self, config):
        controller = BankController(
            config,
            scheme=MithrilScheme(n_entries=8, rfm_th=4),
            rfm_th=4,
            flip_th=1000,
        )
        cycle = 0
        # hammer row 100 hard: it will be the greedy selection
        for row in (100, 102, 100, 104):
            controller.serve(_request(row), cycle)
            cycle = controller.bank.ready_cycle
        assert controller.hammer.disturbance(101) == 0.0

    def test_no_rfm_logic_for_non_rfm_scheme(self, config):
        controller = BankController(
            config, scheme=GrapheneScheme(flip_th=1000), rfm_th=64
        )
        assert controller.rfm_logic is None


class TestArrIntegration:
    def test_graphene_arr_stalls_bank(self, config):
        scheme = GrapheneScheme(flip_th=64)  # threshold = 16
        controller = BankController(config, scheme=scheme, flip_th=1000)
        cycle = 0
        for i in range(40):
            # alternate rows to force ACTs on row 10
            controller.serve(_request(10 if i % 2 == 0 else 50), cycle)
            cycle = controller.bank.ready_cycle
        assert scheme.stats.arr_requests > 0
        assert controller.arr_stall_cycles > 0
        assert controller.energy.preventive_refresh_rows > 0


class TestThrottleRelease:
    def test_row_hit_not_throttled(self, config):
        from repro.mitigations.blockhammer import BlockHammerScheme

        scheme = BlockHammerScheme(flip_th=1500, n_bl=4, cbf_size=64)
        controller = BankController(config, scheme=scheme)
        controller.serve(_request(10), 0)
        # open row is 10 (minimalist-open keeps for queued same-row; queue
        # empty so policy may close it; force check via scheme directly)
        release = controller.throttle_release(_request(10), cycle=100)
        if controller.bank.open_row == 10:
            assert release == 100
