"""Backend selection, fallback, and cache-invariance contracts."""

import json
import warnings

import pytest

from repro.sim import backend as backend_mod
from repro.sim.backend import (
    BACKEND_ENV,
    BACKENDS,
    SCALAR,
    TURBO,
    numpy_available,
    resolve_backend,
)


class TestResolveBackend:
    def test_default_is_scalar(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert resolve_backend() == SCALAR

    def test_env_var_selects(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "turbo")
        assert resolve_backend() in BACKENDS

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "turbo")
        assert resolve_backend("scalar") == SCALAR

    def test_case_and_whitespace_tolerant(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert resolve_backend(" Scalar ") == SCALAR

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown simulation backend"):
            resolve_backend("warp")

    def test_turbo_without_numpy_falls_back_with_warning(
        self, monkeypatch
    ):
        monkeypatch.setattr(backend_mod, "numpy_available", lambda: False)
        monkeypatch.setattr(backend_mod, "_warned_fallback", False)
        with pytest.warns(RuntimeWarning, match="falling back"):
            assert resolve_backend(TURBO) == SCALAR
        # second resolution is silent (warn once per process)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_backend(TURBO) == SCALAR

    def test_make_system_returns_backend_class(self, monkeypatch):
        if not numpy_available():
            pytest.skip("turbo backend needs numpy")
        from repro.sim.system import SimulatedSystem, make_system
        from repro.sim.turbo import TurboSimulatedSystem
        from repro.workloads.synthetic import random_access_trace

        traces = [random_access_trace(num_requests=8)]
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert type(make_system(traces)) is SimulatedSystem
        assert type(
            make_system(traces, backend="turbo")
        ) is TurboSimulatedSystem
        monkeypatch.setenv(BACKEND_ENV, "turbo")
        assert type(make_system(traces)) is TurboSimulatedSystem


class TestBackendIsNotAResultDimension:
    """Job hashes and cached payloads are backend-independent."""

    def _tiny_job(self):
        from repro.engine.job import SimJob, WorkloadSpec

        spec = WorkloadSpec.make("mix-high", scale=0.1, seed=11)
        return SimJob(workload=spec, scheme="mithril", flip_th=2500,
                      scale=0.1)

    def test_job_hash_ignores_backend_env(self, monkeypatch):
        job = self._tiny_job()
        monkeypatch.setenv(BACKEND_ENV, "scalar")
        scalar_hash = job.job_hash()
        monkeypatch.setenv(BACKEND_ENV, "turbo")
        assert job.job_hash() == scalar_hash

    def test_cached_payload_byte_identical_across_backends(
        self, monkeypatch, tmp_path
    ):
        if not numpy_available():
            pytest.skip("turbo backend needs numpy")
        from repro.engine.cache import ResultCache
        from repro.engine.executor import run_jobs

        job = self._tiny_job()
        payloads = {}
        for backend in ("scalar", "turbo"):
            cache_dir = tmp_path / backend
            monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
            monkeypatch.setenv(BACKEND_ENV, backend)
            run_jobs([job], n_jobs=1)
            cache = ResultCache(cache_dir)
            path = cache.path_for(job)
            assert path.exists()
            payloads[backend] = path.read_bytes()
        assert payloads["scalar"] == payloads["turbo"]
        entry = json.loads(payloads["turbo"])
        assert "backend" not in entry  # implementation detail, not data
