"""Unit tests for simulation metrics."""

import pytest

from repro.sim.metrics import (
    POW2_BUCKETS,
    SimulationResult,
    exact_percentile,
    merge_counts,
    percentile_from_counts,
    percentile_summary,
    pow2_bucket,
    pow2_bucket_bounds,
    pow2_histogram,
)
from repro.types import EnergyCounts


def _result(instructions, finishes, **kwargs):
    defaults = dict(
        scheme_name="s",
        total_cycles=max(finishes) if finishes else 0,
        per_core_instructions=instructions,
        per_core_finish_cycles=finishes,
        energy=EnergyCounts(),
    )
    defaults.update(kwargs)
    return SimulationResult(**defaults)


class TestSimulationResult:
    def test_aggregate_ipc_sums_cores(self):
        result = _result([100, 200], [100, 100])
        assert result.aggregate_ipc == pytest.approx(3.0)

    def test_zero_finish_core_skipped(self):
        result = _result([100, 50], [100, 0])
        assert result.aggregate_ipc == pytest.approx(1.0)

    def test_relative_performance(self):
        base = _result([100], [100])      # IPC 1.0
        slow = _result([100], [125])      # IPC 0.8
        assert slow.relative_performance(base) == pytest.approx(80.0)

    def test_relative_performance_zero_baseline(self):
        base = _result([0], [0])
        other = _result([10], [10])
        assert other.relative_performance(base) == 0.0

    def test_row_hit_rate(self):
        result = _result([1], [1], row_hits=30, row_misses=70)
        assert result.row_hit_rate == pytest.approx(0.3)

    def test_row_hit_rate_no_accesses(self):
        assert _result([1], [1]).row_hit_rate == 0.0

    def test_summary_keys(self):
        summary = _result([1], [1]).summary()
        for key in ("scheme", "aggregate_ipc", "flips", "rfm_commands"):
            assert key in summary


class TestEnergyCounts:
    def test_merged_adds_fields(self):
        a = EnergyCounts(acts=1, reads=2, preventive_refresh_rows=3)
        b = EnergyCounts(acts=10, writes=5, rfm_commands=7)
        merged = a.merged(b)
        assert merged.acts == 11
        assert merged.reads == 2
        assert merged.writes == 5
        assert merged.preventive_refresh_rows == 3
        assert merged.rfm_commands == 7

    def test_merged_does_not_mutate(self):
        a = EnergyCounts(acts=1)
        b = EnergyCounts(acts=2)
        a.merged(b)
        assert a.acts == 1 and b.acts == 2


class TestPow2Histograms:
    """Exact-value coverage of the probe layer's histogram helpers.

    Pure python on purpose: the no-numpy CI lane runs these too.
    """

    def test_bucket_zero_and_negative(self):
        assert pow2_bucket(0) == 0
        assert pow2_bucket(-5) == 0

    def test_bucket_boundaries_are_bit_length(self):
        # bucket i (i >= 1) holds [2**(i-1), 2**i)
        assert pow2_bucket(1) == 1
        assert pow2_bucket(2) == 2
        assert pow2_bucket(3) == 2
        assert pow2_bucket(4) == 3
        assert pow2_bucket(7) == 3
        assert pow2_bucket(8) == 4

    def test_bucket_clamps_to_last(self):
        huge = 1 << 40
        assert pow2_bucket(huge) == POW2_BUCKETS - 1
        assert pow2_bucket(huge, buckets=4) == 3

    def test_bounds_round_trip_bucket(self):
        for index in range(POW2_BUCKETS):
            lower, upper = pow2_bucket_bounds(index)
            assert pow2_bucket(lower) == index
            if upper is not None:
                assert pow2_bucket(upper - 1) == index
                assert pow2_bucket(upper) == index + 1

    def test_bounds_exact_values(self):
        assert pow2_bucket_bounds(0) == (0, 1)
        assert pow2_bucket_bounds(1) == (1, 2)
        assert pow2_bucket_bounds(3) == (4, 8)
        # the last bucket is open-ended
        last = pow2_bucket_bounds(POW2_BUCKETS - 1)
        assert last == (1 << (POW2_BUCKETS - 2), None)

    def test_histogram_exact_counts(self):
        counts = pow2_histogram([0, 0, 1, 2, 3, 4, 9], buckets=5)
        assert counts == [2, 1, 2, 1, 1]
        assert sum(counts) == 7

    def test_merge_counts_pads_shorter_vectors(self):
        assert merge_counts([[1, 2], [3, 4, 5]]) == [4, 6, 5]
        assert merge_counts([[], [1, 1]]) == [1, 1]
        assert merge_counts([]) == []
        assert merge_counts([[], []]) == []


class TestPercentiles:
    def test_exact_percentile_nearest_rank(self):
        values = [1, 2, 3, 4]
        assert exact_percentile(values, 50) == 2
        assert exact_percentile(values, 75) == 3
        assert exact_percentile(values, 95) == 4
        assert exact_percentile(values, 100) == 4

    def test_exact_percentile_unsorted_input(self):
        assert exact_percentile([9, 1, 5], 50) == 5
        assert exact_percentile([9, 1, 5], 1) == 1

    def test_exact_percentile_empty_and_bad_q(self):
        assert exact_percentile([], 50) is None
        with pytest.raises(ValueError):
            exact_percentile([1], 0)
        with pytest.raises(ValueError):
            exact_percentile([1], 101)

    def test_percentile_from_counts_exact(self):
        # 3 samples in bucket 1, 2 in bucket 2, 1 in bucket 4
        counts = [0, 3, 2, 0, 1]
        assert percentile_from_counts(counts, 50) == 1
        assert percentile_from_counts(counts, 75) == 2
        assert percentile_from_counts(counts, 99) == 4
        assert percentile_from_counts(counts, 100) == 4

    def test_percentile_from_counts_empty_and_bad_q(self):
        assert percentile_from_counts([0, 0], 50) is None
        assert percentile_from_counts([], 50) is None
        with pytest.raises(ValueError):
            percentile_from_counts([1], 0)

    def test_percentile_summary_exact_panel(self):
        summary = percentile_summary([4, 1, 3, 2])
        assert summary == {
            "count": 4, "min": 1, "max": 4, "mean": 2.5,
            "p50": 2, "p95": 4, "p99": 4,
        }

    def test_percentile_summary_empty(self):
        assert percentile_summary([]) == {"count": 0}
