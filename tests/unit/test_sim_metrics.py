"""Unit tests for simulation metrics."""

import pytest

from repro.sim.metrics import SimulationResult
from repro.types import EnergyCounts


def _result(instructions, finishes, **kwargs):
    defaults = dict(
        scheme_name="s",
        total_cycles=max(finishes) if finishes else 0,
        per_core_instructions=instructions,
        per_core_finish_cycles=finishes,
        energy=EnergyCounts(),
    )
    defaults.update(kwargs)
    return SimulationResult(**defaults)


class TestSimulationResult:
    def test_aggregate_ipc_sums_cores(self):
        result = _result([100, 200], [100, 100])
        assert result.aggregate_ipc == pytest.approx(3.0)

    def test_zero_finish_core_skipped(self):
        result = _result([100, 50], [100, 0])
        assert result.aggregate_ipc == pytest.approx(1.0)

    def test_relative_performance(self):
        base = _result([100], [100])      # IPC 1.0
        slow = _result([100], [125])      # IPC 0.8
        assert slow.relative_performance(base) == pytest.approx(80.0)

    def test_relative_performance_zero_baseline(self):
        base = _result([0], [0])
        other = _result([10], [10])
        assert other.relative_performance(base) == 0.0

    def test_row_hit_rate(self):
        result = _result([1], [1], row_hits=30, row_misses=70)
        assert result.row_hit_rate == pytest.approx(0.3)

    def test_row_hit_rate_no_accesses(self):
        assert _result([1], [1]).row_hit_rate == 0.0

    def test_summary_keys(self):
        summary = _result([1], [1]).summary()
        for key in ("scheme", "aggregate_ipc", "flips", "rfm_commands"):
            assert key in summary


class TestEnergyCounts:
    def test_merged_adds_fields(self):
        a = EnergyCounts(acts=1, reads=2, preventive_refresh_rows=3)
        b = EnergyCounts(acts=10, writes=5, rfm_commands=7)
        merged = a.merged(b)
        assert merged.acts == 11
        assert merged.reads == 2
        assert merged.writes == 5
        assert merged.preventive_refresh_rows == 3
        assert merged.rfm_commands == 7

    def test_merged_does_not_mutate(self):
        a = EnergyCounts(acts=1)
        b = EnergyCounts(acts=2)
        a.merged(b)
        assert a.acts == 1 and b.acts == 2
