"""Unit tests for the adversary fuzzer."""

import pytest

from repro.protection import NoProtection
from repro.verify.fuzzer import FuzzPattern, fuzz_scheme, worst_case


class TestFuzzPattern:
    def test_round_robin_covers_rows(self):
        pattern = FuzzPattern(
            "p", rows=(1, 2, 3), schedule="round-robin"
        )
        assert list(pattern.stream(6)) == [1, 2, 3, 1, 2, 3]

    def test_bursts_respect_length(self):
        pattern = FuzzPattern(
            "p", rows=(7, 9), schedule="bursts", burst_length=3
        )
        assert list(pattern.stream(8)) == [7, 7, 7, 9, 9, 9, 7, 7]

    def test_weighted_is_reproducible(self):
        pattern = FuzzPattern(
            "p", rows=(1, 2), schedule="weighted", weights=(0.9, 0.1)
        )
        assert list(pattern.stream(20)) == list(pattern.stream(20))

    def test_unknown_schedule_raises(self):
        pattern = FuzzPattern("p", rows=(1,), schedule="chaos")
        with pytest.raises(ValueError):
            list(pattern.stream(1))


class TestFuzzScheme:
    def test_results_sorted_by_disturbance(self):
        results = fuzz_scheme(
            NoProtection, flip_th=100_000, rfm_th=0,
            iterations=5, acts_per_pattern=2_000,
        )
        levels = [r.report.max_disturbance for r in results]
        assert levels == sorted(levels, reverse=True)

    def test_deterministic_in_seed(self):
        a = fuzz_scheme(NoProtection, 100_000, 0, iterations=3,
                        acts_per_pattern=1_000, seed=5)
        b = fuzz_scheme(NoProtection, 100_000, 0, iterations=3,
                        acts_per_pattern=1_000, seed=5)
        assert [r.pattern for r in a] == [r.pattern for r in b]

    def test_worst_case(self):
        results = fuzz_scheme(NoProtection, 100_000, 0, iterations=3,
                              acts_per_pattern=1_000)
        assert worst_case(results) is results[0]
        with pytest.raises(ValueError):
            worst_case([])

    def test_disturbance_ratio(self):
        results = fuzz_scheme(NoProtection, 1_000, 0, iterations=2,
                              acts_per_pattern=4_000)
        for result in results:
            assert result.disturbance_ratio >= 0.0
