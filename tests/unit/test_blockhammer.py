"""Unit tests for BlockHammer."""

import pytest

from repro.mitigations.blockhammer import (
    BlockHammerScheme,
    blockhammer_config,
    blockhammer_delay_cycles,
)


class TestConfig:
    def test_paper_configs(self):
        assert blockhammer_config(50_000) == (1024, 17_100)
        assert blockhammer_config(1_500) == (8192, 490)

    def test_delay_grows_as_nbl_approaches_flip_th(self):
        tight = blockhammer_delay_cycles(1_500, 1_400)
        loose = blockhammer_delay_cycles(1_500, 490)
        assert tight > loose

    def test_delay_rejects_nbl_above_flip_th(self):
        with pytest.raises(ValueError):
            blockhammer_delay_cycles(1_000, 1_000)

    def test_delay_protects_flip_th(self, timings):
        """N_BL free ACTs + delayed ACTs cannot reach FlipTH in tREFW."""
        flip_th, n_bl = 6_250, 2_100
        delay = blockhammer_delay_cycles(flip_th, n_bl, timings)
        trefw_cycles = timings.trefw_cycles
        max_acts = n_bl + trefw_cycles / delay
        assert max_acts <= flip_th * 1.01


class TestBlockHammerScheme:
    def test_no_refreshes_ever(self):
        scheme = BlockHammerScheme(flip_th=1_500, cbf_size=256, n_bl=8)
        for _ in range(20):
            assert scheme.on_activate(5, 0) == []

    def test_blacklists_hot_row(self):
        scheme = BlockHammerScheme(flip_th=1_500, cbf_size=1024, n_bl=8)
        for _ in range(8):
            scheme.on_activate(5, 0)
        assert scheme.is_blacklisted(5)

    def test_throttle_release_delays_blacklisted(self):
        scheme = BlockHammerScheme(flip_th=1_500, cbf_size=1024, n_bl=4)
        for cycle in range(4):
            scheme.on_activate(5, cycle)
        release = scheme.throttle_release(5, cycle=10)
        assert release > 10
        assert release >= 3 + scheme.delay_cycles

    def test_cold_row_not_throttled(self):
        scheme = BlockHammerScheme(flip_th=1_500, cbf_size=1024, n_bl=100)
        scheme.on_activate(5, 0)
        assert scheme.throttle_release(5, cycle=10) == 10

    def test_aliasing_rows_share_fate(self):
        """CBF collisions blacklist innocent rows — the false-positive
        behaviour behind the paper's adversarial pattern."""
        from repro.workloads.attacks import find_aliasing_rows

        scheme = BlockHammerScheme(flip_th=1_500, cbf_size=64, n_bl=16,
                                   num_hashes=2)
        aliases = find_aliasing_rows(
            scheme.cbf._filters[0], target_row=5, count=3,
            search_space=4096, min_shared=2,
        )
        assert aliases  # small filter: collisions exist

    def test_throttle_events_counted(self):
        scheme = BlockHammerScheme(flip_th=1_500, cbf_size=1024, n_bl=4)
        for cycle in range(8):
            scheme.on_activate(5, cycle)
        assert scheme.stats.throttle_events > 0

    def test_table_entries(self):
        scheme = BlockHammerScheme(flip_th=1_500, cbf_size=512, n_bl=16)
        assert scheme.table_entries() == 1024
