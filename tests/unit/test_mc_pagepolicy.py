"""Unit tests for the page policies."""

import pytest

from repro.mc.pagepolicy import (
    ClosedPagePolicy,
    MinimalistOpenPolicy,
    OpenPagePolicy,
    make_page_policy,
)
from repro.types import BankAddress, MemoryRequest, RowAddress


def _request(row: int) -> MemoryRequest:
    return MemoryRequest(
        core=0, arrival_cycle=0,
        address=RowAddress(BankAddress(0, 0, 0), row),
    )


class TestPolicies:
    def test_open_never_closes(self):
        policy = OpenPagePolicy()
        assert not policy.should_close(5, 100, [])

    def test_closed_always_closes(self):
        policy = ClosedPagePolicy()
        assert policy.should_close(5, 0, [_request(5)])

    def test_minimalist_closes_after_burst(self):
        policy = MinimalistOpenPolicy(burst_limit=4)
        queue = [_request(5)]
        assert not policy.should_close(5, 3, queue)
        assert policy.should_close(5, 4, queue)

    def test_minimalist_closes_without_pending_same_row(self):
        policy = MinimalistOpenPolicy()
        assert policy.should_close(5, 0, [_request(9)])

    def test_minimalist_keeps_open_for_pending_same_row(self):
        policy = MinimalistOpenPolicy()
        assert not policy.should_close(5, 1, [_request(5), _request(9)])

    def test_factory(self):
        assert isinstance(make_page_policy("open"), OpenPagePolicy)
        assert isinstance(make_page_policy("closed"), ClosedPagePolicy)
        assert isinstance(
            make_page_policy("minimalist-open"), MinimalistOpenPolicy
        )
        with pytest.raises(ValueError):
            make_page_policy("bogus")
