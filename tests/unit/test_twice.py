"""Unit tests for TWiCe."""

import pytest

from repro.mitigations.twice import TwiceScheme
from repro.params import DramTimings


class TestTwiceScheme:
    def test_arr_at_quarter_flip_th(self):
        scheme = TwiceScheme(flip_th=40)  # arr threshold = 10
        victims = []
        for _ in range(10):
            victims = scheme.on_activate(7, cycle=0)
        assert sorted(victims) == [6, 8]

    def test_entry_retired_after_arr(self):
        scheme = TwiceScheme(flip_th=40)
        for _ in range(10):
            scheme.on_activate(7, cycle=0)
        assert 7 not in scheme._entries

    def test_pruning_drops_cold_rows(self, timings):
        scheme = TwiceScheme(flip_th=100_000, timings=timings)
        scheme.on_activate(5, cycle=0)
        # after many tREFI checkpoints with no further ACTs, row 5 must
        # fall below the pruning rate and get dropped
        late = timings.trefi_cycles * 200
        scheme.on_activate(99, cycle=late)
        assert 5 not in scheme._entries
        assert scheme.pruned >= 1

    def test_hot_rows_survive_pruning(self, timings):
        scheme = TwiceScheme(flip_th=100_000, timings=timings)
        cycle = 0
        for i in range(50):
            for _ in range(20):
                scheme.on_activate(5, cycle=cycle)
            cycle += timings.trefi_cycles
        assert 5 in scheme._entries

    def test_max_entries_seen(self):
        scheme = TwiceScheme(flip_th=100_000)
        for row in range(25):
            scheme.on_activate(row, cycle=0)
        assert scheme.max_entries_seen == 25
        assert scheme.table_entries() == 25

    def test_edge_rows_clipped(self):
        scheme = TwiceScheme(flip_th=40, rows_per_bank=8)
        victims = []
        for _ in range(10):
            victims = scheme.on_activate(7, cycle=0)
        assert victims == [6]
