"""Unit tests for the reporting helpers."""

import pytest

from repro.analysis.report import (
    bar_chart,
    format_experiment,
    line_chart,
    markdown_table,
)


class TestMarkdownTable:
    def test_basic_rendering(self):
        table = markdown_table([{"a": 1, "b": 2.5}, {"a": 3, "b": None}])
        lines = table.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert "| 1 | 2.500 |" in lines
        assert "| 3 | - |" in lines

    def test_column_selection(self):
        table = markdown_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in table.splitlines()[0]

    def test_empty(self):
        assert markdown_table([]) == "(no rows)"


class TestBarChart:
    def test_scales_to_peak(self):
        chart = bar_chart({"x": 10.0, "y": 5.0}, width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_unit_suffix(self):
        chart = bar_chart({"x": 1.0}, unit="%")
        assert "1%" in chart

    def test_empty(self):
        assert bar_chart({}) == "(no data)"


class TestLineChart:
    def test_renders_all_series(self):
        chart = line_chart(
            {"up": [0, 1, 2, 3], "down": [3, 2, 1, 0]}, height=4, width=8
        )
        assert "*" in chart and "o" in chart
        assert "up" in chart and "down" in chart

    def test_monotone_series_shape(self):
        chart = line_chart({"up": [0, 1, 2, 3]}, height=4, width=4)
        rows = chart.splitlines()[:-1]
        first_col = [row[0] for row in rows]
        last_col = [row[-1] for row in rows]
        # rising series: mark near the bottom-left, top-right
        assert first_col[-1] == "*"
        assert last_col[0] == "*"

    def test_handles_none_values(self):
        chart = line_chart({"s": [1.0, None, 3.0]})
        assert "y:" in chart

    def test_empty(self):
        assert line_chart({}) == "(no data)"


class TestFormatExperiment:
    def test_list_of_dicts(self):
        text = format_experiment("fig", [{"a": 1}])
        assert text.startswith("### fig")
        assert "| a |" in text

    def test_nested_mapping(self):
        text = format_experiment(
            "table4", {"Mithril": {50_000: 0.08, 25_000: 0.17}}
        )
        assert "Mithril" in text
        assert "50000" in text

    def test_flat_mapping(self):
        text = format_experiment("fig8", {"mean_burst_length": 128.0})
        assert "mean_burst_length" in text
