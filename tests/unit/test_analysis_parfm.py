"""Unit tests for the PARFM failure-probability analysis (Appendix C)."""

import pytest

from repro.analysis.parfm_failure import (
    parfm_bank_failure_probability,
    parfm_rfm_th_for,
    parfm_system_failure_probability,
)


class TestFailureProbability:
    def test_probability_in_unit_interval(self):
        for rfm_th in (4, 16, 64):
            p = parfm_bank_failure_probability(rfm_th, flip_th=6_250)
            assert 0.0 <= p <= 1.0

    def test_failure_grows_with_rfm_th(self):
        low = parfm_bank_failure_probability(8, flip_th=6_250)
        high = parfm_bank_failure_probability(64, flip_th=6_250)
        assert high > low

    def test_failure_shrinks_with_flip_th(self):
        weak = parfm_bank_failure_probability(32, flip_th=1_500)
        strong = parfm_bank_failure_probability(32, flip_th=12_500)
        assert strong < weak

    def test_system_failure_scales_with_banks(self):
        one = parfm_system_failure_probability(32, 6_250, n_banks=1)
        many = parfm_system_failure_probability(32, 6_250, n_banks=22)
        assert many >= one

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            parfm_bank_failure_probability(1, 6_250)
        with pytest.raises(ValueError):
            parfm_bank_failure_probability(16, 2)


class TestRfmThSelection:
    def test_selected_rfm_th_meets_target(self):
        for flip_th in (6_250, 12_500):
            rfm_th = parfm_rfm_th_for(flip_th, target=1e-15)
            assert rfm_th is not None
            assert parfm_system_failure_probability(rfm_th, flip_th) < 1e-15
            # one step larger must violate the target (maximality)
            assert (
                parfm_system_failure_probability(rfm_th + 1, flip_th) >= 1e-15
            )

    def test_lower_flip_th_needs_lower_rfm_th(self):
        """The paper's key point: PARFM must issue RFMs more often than
        Mithril as FlipTH shrinks."""
        high = parfm_rfm_th_for(25_000)
        low = parfm_rfm_th_for(1_500)
        assert low < high

    def test_parfm_rfm_th_below_mithril(self):
        """At low FlipTH, PARFM's RFM_TH is below Mithril's (Section VI)."""
        from repro.params import MITHRIL_DEFAULT_RFM_TH

        rfm_th = parfm_rfm_th_for(1_500)
        assert rfm_th < MITHRIL_DEFAULT_RFM_TH[1_500]
