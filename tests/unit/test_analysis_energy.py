"""Unit tests for the energy model."""

import pytest

from repro.analysis.energy import (
    EnergyModel,
    dynamic_energy_nj,
    energy_overhead_percent,
)
from repro.sim.metrics import SimulationResult
from repro.types import EnergyCounts


def _result(**energy_kwargs) -> SimulationResult:
    return SimulationResult(
        scheme_name="x",
        total_cycles=1000,
        per_core_instructions=[100],
        per_core_finish_cycles=[1000],
        energy=EnergyCounts(**energy_kwargs),
    )


class TestEnergyModel:
    def test_acts_dominate(self):
        model = EnergyModel()
        energy = model.energy_nj(EnergyCounts(acts=100))
        assert energy == pytest.approx(100 * model.act_pre_nj)

    def test_preventive_refresh_costs_per_row(self):
        model = EnergyModel()
        a = model.energy_nj(EnergyCounts(preventive_refresh_rows=10))
        b = model.energy_nj(EnergyCounts(preventive_refresh_rows=20))
        assert b == pytest.approx(2 * a)

    def test_auto_refresh_scaled_by_group_size(self, organization):
        model = EnergyModel()
        energy = model.energy_nj(
            EnergyCounts(auto_refreshes=1), organization
        )
        assert energy == pytest.approx(
            organization.rows_per_refresh_group * model.refresh_row_nj
        )

    def test_mrr_and_rfm_counted(self):
        model = EnergyModel()
        energy = model.energy_nj(
            EnergyCounts(rfm_commands=2, mrr_commands=3)
        )
        assert energy == pytest.approx(
            2 * model.rfm_command_nj + 3 * model.mrr_nj
        )


class TestOverheadPercent:
    def test_zero_overhead_for_identical_runs(self):
        a = _result(acts=100, reads=50)
        assert energy_overhead_percent(a, a) == 0.0

    def test_overhead_from_preventive_refreshes(self):
        base = _result(acts=1000, reads=500)
        protected = _result(acts=1000, reads=500, preventive_refresh_rows=100)
        overhead = energy_overhead_percent(protected, base)
        assert overhead > 0

    def test_dynamic_energy_includes_tracker(self):
        result = _result(acts=10)
        result.acts = 10
        with_tracker = dynamic_energy_nj(result)
        assert with_tracker > EnergyModel().energy_nj(EnergyCounts(acts=10)) - 1e-9
