"""Unit tests for the cluster spool transport (repro.cluster.transport).

The transport is the only channel between coordinator and host
agents, so its contract is load-bearing for every distributed
invariant: atomic one-message files, per-sender ordering, quarantine
of torn envelopes, and deterministic fault injection at
``transport.send`` / ``transport.recv`` / ``host.heartbeat``
(docs/FAULTS.md).
"""

import json
import time

import pytest

from repro.faults import FAULT_PLAN_ENV, InjectedError
from repro.cluster.transport import (
    COORDINATOR_MAILBOX,
    Message,
    SpoolTransport,
    heartbeat_gate,
    host_mailbox,
)


def _activate(monkeypatch, rules, state_dir=None):
    doc = {"faults": rules}
    if state_dir is not None:
        doc["state_dir"] = str(state_dir)
    monkeypatch.setenv(FAULT_PLAN_ENV, json.dumps(doc))


@pytest.fixture
def spool(tmp_path):
    return SpoolTransport(tmp_path / "cluster", sender="host-1")


class TestRoundtrip:
    def test_send_recv_preserves_payload_and_order(self, spool):
        for n in range(3):
            spool.send(COORDINATOR_MAILBOX, Message(
                type="result", sender="host-1", payload={"n": n},
            ))
        got = spool.recv(COORDINATOR_MAILBOX)
        assert [m.payload["n"] for m in got] == [0, 1, 2]
        assert all(m.type == "result" for m in got)
        assert all(m.sender == "host-1" for m in got)

    def test_recv_consumes(self, spool):
        spool.send(COORDINATOR_MAILBOX, Message(type="hello", sender="h"))
        assert len(spool.recv(COORDINATOR_MAILBOX)) == 1
        assert spool.recv(COORDINATOR_MAILBOX) == []
        assert spool.pending_count(COORDINATOR_MAILBOX) == 0

    def test_empty_mailbox_is_empty(self, spool):
        assert spool.recv("never-created") == []
        assert spool.pending_count("never-created") == 0

    def test_limit_leaves_remainder_spooled(self, spool):
        for n in range(5):
            spool.send("m", Message(type="t", sender="s", payload={"n": n}))
        first = spool.recv("m", limit=2)
        assert [m.payload["n"] for m in first] == [0, 1]
        assert spool.pending_count("m") == 3
        rest = spool.recv("m")
        assert [m.payload["n"] for m in rest] == [2, 3, 4]

    def test_default_sender_is_stamped(self, spool):
        spool.send("m", Message(type="t", sender=""))
        [got] = spool.recv("m")
        assert got.sender == "host-1"
        assert got.seq > 0 and got.sent > 0

    def test_mailbox_names(self):
        assert host_mailbox("2") == "host-2"
        assert COORDINATOR_MAILBOX == "coordinator"


class TestSendFaults:
    def test_drop_loses_the_message(self, spool, monkeypatch):
        _activate(monkeypatch, [
            {"site": "transport.send", "kind": "drop", "times": 1},
        ])
        spool.send("m", Message(type="result", sender="h"))
        spool.send("m", Message(type="result", sender="h"))
        assert len(spool.recv("m")) == 1

    def test_delay_holds_delivery_until_not_before(self, spool,
                                                   monkeypatch):
        _activate(monkeypatch, [
            {"site": "transport.send", "kind": "delay",
             "seconds": 0.2, "times": 1},
        ])
        spool.send("m", Message(type="result", sender="h"))
        monkeypatch.delenv(FAULT_PLAN_ENV)
        assert spool.recv("m") == []          # still embargoed
        assert spool.pending_count("m") == 1  # but spooled, not lost
        time.sleep(0.25)
        assert len(spool.recv("m")) == 1

    def test_duplicate_delivers_twice(self, spool, monkeypatch):
        _activate(monkeypatch, [
            {"site": "transport.send", "kind": "duplicate", "times": 1},
        ])
        spool.send("m", Message(type="result", sender="h",
                                payload={"k": "v"}))
        monkeypatch.delenv(FAULT_PLAN_ENV)
        got = spool.recv("m")
        assert len(got) == 2
        assert got[0].payload == got[1].payload == {"k": "v"}

    def test_torn_message_quarantines_not_delivers(self, spool,
                                                   monkeypatch):
        _activate(monkeypatch, [
            {"site": "transport.send", "kind": "torn", "times": 1},
        ])
        spool.send("m", Message(type="result", sender="h"))
        monkeypatch.delenv(FAULT_PLAN_ENV)
        assert spool.recv("m") == []
        quarantine = spool.inbox("m") / "quarantine"
        assert any(quarantine.glob("msg-*"))

    def test_key_scopes_to_mailbox_type_and_sender(self, spool,
                                                   monkeypatch):
        # A plan can target one host's result traffic and nothing else.
        _activate(monkeypatch, [
            {"site": "transport.send", "kind": "drop",
             "match": "coordinator:result:host-2", "times": None},
        ])
        spool.send(COORDINATOR_MAILBOX,
                   Message(type="result", sender="host-2"))
        spool.send(COORDINATOR_MAILBOX,
                   Message(type="result", sender="host-1"))
        spool.send(COORDINATOR_MAILBOX,
                   Message(type="heartbeat", sender="host-2"))
        got = spool.recv(COORDINATOR_MAILBOX)
        assert {(m.type, m.sender) for m in got} == {
            ("result", "host-1"), ("heartbeat", "host-2"),
        }


class TestRecvFaults:
    def test_drop_deletes_without_delivering(self, spool, monkeypatch):
        spool.send("m", Message(type="result", sender="h"))
        _activate(monkeypatch, [
            {"site": "transport.recv", "kind": "drop", "times": 1},
        ])
        assert spool.recv("m") == []
        monkeypatch.delenv(FAULT_PLAN_ENV)
        assert spool.recv("m") == []  # really gone, not embargoed

    def test_delay_restamps_and_redelivers_later(self, spool,
                                                 monkeypatch):
        spool.send("m", Message(type="result", sender="h"))
        _activate(monkeypatch, [
            {"site": "transport.recv", "kind": "delay",
             "seconds": 0.2, "times": 1},
        ])
        assert spool.recv("m") == []
        monkeypatch.delenv(FAULT_PLAN_ENV)
        assert spool.pending_count("m") == 1
        time.sleep(0.25)
        assert len(spool.recv("m")) == 1

    def test_duplicate_delivers_twice_from_one_file(self, spool,
                                                    monkeypatch):
        spool.send("m", Message(type="result", sender="h"))
        _activate(monkeypatch, [
            {"site": "transport.recv", "kind": "duplicate", "times": 1},
        ])
        assert len(spool.recv("m")) == 2
        monkeypatch.delenv(FAULT_PLAN_ENV)
        assert spool.recv("m") == []

    def test_torn_on_read_quarantines(self, spool, monkeypatch):
        spool.send("m", Message(type="result", sender="h"))
        _activate(monkeypatch, [
            {"site": "transport.recv", "kind": "torn", "times": 1},
        ])
        assert spool.recv("m") == []
        monkeypatch.delenv(FAULT_PLAN_ENV)
        assert spool.recv("m") == []
        quarantine = spool.inbox("m") / "quarantine"
        assert any(quarantine.glob("msg-*"))

    def test_externally_torn_file_quarantines(self, spool):
        # A half-written file with no fault plan at all (filesystem
        # tearing) quarantines instead of crashing the receiver.
        spool.send("m", Message(type="result", sender="h",
                                payload={"big": "x" * 200}))
        [path] = [p for p in spool.inbox("m").iterdir()
                  if p.name.startswith("msg-")]
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        assert spool.recv("m") == []
        quarantine = spool.inbox("m") / "quarantine"
        assert any(quarantine.glob("msg-*"))


class TestHeartbeatGate:
    def test_open_without_a_plan(self):
        assert heartbeat_gate("1") is True

    def test_drop_closes_the_gate(self, monkeypatch):
        _activate(monkeypatch, [
            {"site": "host.heartbeat", "kind": "drop",
             "match": "2", "times": None},
        ])
        assert heartbeat_gate("2") is False  # the partition
        assert heartbeat_gate("1") is True   # other hosts unaffected

    def test_error_kind_acts_in_place(self, monkeypatch):
        _activate(monkeypatch, [
            {"site": "host.heartbeat", "kind": "error"},
        ])
        with pytest.raises(InjectedError):
            heartbeat_gate("1")
