"""Unit tests for the DRAM chip aggregation (Figure 4)."""

import pytest

from repro.core.mithril import MithrilScheme
from repro.dram.device import (
    MR_RFM_FLAG,
    CommandError,
    DramChip,
    DramCommand,
)
from repro.types import CommandKind


def _mithril_chip(**kwargs) -> DramChip:
    return DramChip(
        scheme_factory=lambda: MithrilScheme(
            n_entries=8, rfm_th=4, **kwargs
        ),
        flip_th=1_000,
    )


class TestCommandDecoding:
    def test_act_updates_tracker_and_hammer(self):
        chip = _mithril_chip()
        chip.execute(DramCommand(CommandKind.ACT, bank=3, row=100))
        assert chip.schemes[3].table.estimate(100) == 1
        assert chip.hammer[3].disturbance(99) == 1.0

    def test_act_requires_row(self):
        chip = _mithril_chip()
        with pytest.raises(CommandError):
            chip.execute(DramCommand(CommandKind.ACT, bank=0))

    def test_bank_bounds_checked(self):
        chip = _mithril_chip()
        with pytest.raises(CommandError):
            chip.execute(DramCommand(CommandKind.ACT, bank=99, row=1))

    def test_rfm_refreshes_victims(self):
        chip = _mithril_chip()
        for _ in range(3):
            chip.execute(DramCommand(CommandKind.ACT, bank=0, row=100))
        victims = chip.execute(DramCommand(CommandKind.RFM, bank=0))
        assert sorted(victims) == [99, 101]
        assert chip.hammer[0].disturbance(99) == 0.0
        assert chip.preventive_refreshes == 2

    def test_per_bank_isolation(self):
        chip = _mithril_chip()
        chip.execute(DramCommand(CommandKind.ACT, bank=0, row=100))
        assert chip.schemes[1].table.estimate(100) == 0

    def test_ref_restores_group(self):
        chip = _mithril_chip()
        chip.execute(DramCommand(CommandKind.ACT, bank=0, row=1))
        chip.execute(DramCommand(CommandKind.REF, bank=0, cycle=10**9))
        # group 0 covers rows 0..7, clearing the victims of row 1
        assert chip.hammer[0].disturbance(0) == 0.0
        assert chip.hammer[0].disturbance(2) == 0.0

    def test_rd_wr_pre_are_accepted(self):
        chip = _mithril_chip()
        for kind in (CommandKind.PRE, CommandKind.RD, CommandKind.WR):
            assert chip.execute(DramCommand(kind, bank=0)) == []
        assert chip.commands_processed == 3


class TestModeRegisters:
    def test_mrr_flag_follows_scheme(self):
        chip = _mithril_chip(adaptive_th=10, plus=True)
        # cold table: small spread -> flag clear after an ACT updates it
        chip.execute(DramCommand(CommandKind.ACT, bank=0, row=5))
        assert chip.mode_register_read(MR_RFM_FLAG) == 0
        for _ in range(30):
            chip.execute(DramCommand(CommandKind.ACT, bank=0, row=5))
        assert chip.mode_register_read(MR_RFM_FLAG) == 1

    def test_unknown_register_raises(self):
        chip = _mithril_chip()
        with pytest.raises(CommandError):
            chip.mode_register_read(12345)

    def test_mode_register_write(self):
        chip = _mithril_chip()
        chip.mode_register_write(7, 42)
        assert chip.mode_register_read(7) == 42


class TestChipAggregates:
    def test_flip_count_aggregates_banks(self):
        chip = DramChip(flip_th=4)
        for _ in range(4):
            chip.execute(DramCommand(CommandKind.ACT, bank=0, row=10))
            chip.execute(DramCommand(CommandKind.ACT, bank=1, row=20))
        assert chip.flip_count == 4  # two victims per bank

    def test_max_disturbance(self):
        chip = DramChip(flip_th=1_000)
        for _ in range(5):
            chip.execute(DramCommand(CommandKind.ACT, bank=2, row=50))
        assert chip.max_disturbance == 5.0
