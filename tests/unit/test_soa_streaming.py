"""Streamed chunked SoA decode and the bounded decode cache.

The turbo drain reads trace fields through a window protocol
(``chunk_start`` / ``chunk_end`` / ``ensure``); these tests pin the
two invariants the protocol rests on: every window of a streamed
decode is field-identical to the same span of the full decode
(including the cross-chunk ``steps`` lookahead), and the full-decode
cache is bounded (LRU eviction) and weakly tied to its trace objects.
"""

import gc

import pytest

pytest.importorskip("numpy", reason="SoA decode needs numpy")

from repro.sim import soa as soa_module
from repro.sim.soa import (
    CACHE_ENV,
    CHUNK_ENV,
    StreamedTraceSoA,
    TraceDecodeCache,
    TraceSoA,
    decode_cache,
    decode_trace,
)
from repro.workloads.trace import CoreTrace, TraceEntry


def _trace(n, name="t", gap_pattern=(0, 0, 3, 1)):
    """A trace with runs of gap-0 entries (same-epoch bursts) so chunk
    edges land mid-epoch for most chunk sizes."""
    entries = [
        TraceEntry(
            gap_cycles=gap_pattern[i % len(gap_pattern)],
            bank_index=i * 7,
            row=(i * 13) % 64,
            column=i % 8,
            is_write=(i % 5 == 0),
        )
        for i in range(n)
    ]
    return CoreTrace(name=name, entries=entries, memory_intensive=True)


@pytest.fixture(autouse=True)
def _fresh_cache(monkeypatch):
    """Isolate the module-level cache from other tests."""
    monkeypatch.delenv(CHUNK_ENV, raising=False)
    monkeypatch.delenv(CACHE_ENV, raising=False)
    monkeypatch.setattr(soa_module, "_cache", None)


class TestStreamedDecodeEquality:
    @pytest.mark.parametrize("chunk", [1, 3, 7, 16, 37])
    def test_windows_match_full_decode(self, chunk):
        """Walking every window reproduces the full decode field-for-
        field — including ``steps`` at chunk boundaries, which needs
        the one-entry lookahead into the next chunk."""
        trace = _trace(97)
        full = TraceSoA(trace, num_banks=8)
        streamed = StreamedTraceSoA(trace, num_banks=8, chunk=chunk)
        seen = {f: [] for f in ("flats", "rows", "columns", "writes", "steps")}
        index = 0
        while index < streamed.length:
            streamed.ensure(index)
            assert streamed.chunk_start <= index < streamed.chunk_end
            for field in seen:
                seen[field].extend(getattr(streamed, field))
            index = streamed.chunk_end
        for field, values in seen.items():
            assert values == getattr(full, field), field

    def test_chunk_boundary_mid_epoch(self):
        """A gap-0 burst straddling the chunk edge: the step *after*
        the last entry of the window comes from the next chunk's first
        gap, so it must be right without loading that chunk."""
        entries = [
            TraceEntry(gap_cycles=g, bank_index=i, row=i)
            for i, g in enumerate([5, 0, 0, 0, 0, 9, 2])
        ]
        trace = CoreTrace(name="burst", entries=entries,
                          memory_intensive=True)
        streamed = StreamedTraceSoA(trace, num_banks=4, chunk=3)
        # Window [0, 3): steps peek gaps of entries 1..3 = 0,0,0 -> 1,1,1
        assert streamed.steps == [1, 1, 1]
        streamed.ensure(3)
        # Window [3, 6): gaps of entries 4..6 = 0,9,2 -> 1,9,2
        assert streamed.steps == [1, 9, 2]
        streamed.ensure(6)
        # Final window: last entry of the trace steps 1.
        assert streamed.steps == [1]

    def test_random_access_is_chunk_aligned(self):
        streamed = StreamedTraceSoA(_trace(50), num_banks=4, chunk=8)
        streamed.ensure(29)
        assert (streamed.chunk_start, streamed.chunk_end) == (24, 32)
        loads = streamed.loads
        streamed.ensure(24)
        streamed.ensure(31)
        assert streamed.loads == loads  # in-window: no reload
        with pytest.raises(IndexError):
            streamed.ensure(50)
        with pytest.raises(IndexError):
            streamed.ensure(-1)

    def test_rejects_nonpositive_chunk(self):
        with pytest.raises(ValueError, match="chunk"):
            StreamedTraceSoA(_trace(4), num_banks=4, chunk=0)


class TestDecodeTraceDispatch:
    def test_small_trace_decodes_fully_and_caches(self):
        trace = _trace(20)
        first = decode_trace(trace, 8)
        assert isinstance(first, TraceSoA)
        assert decode_trace(trace, 8) is first
        # Different geometry is a different decode.
        assert decode_trace(trace, 4) is not first

    def test_env_chunk_forces_streaming(self, monkeypatch):
        monkeypatch.setenv(CHUNK_ENV, "8")
        trace = _trace(20)
        streamed = decode_trace(trace, 8)
        assert isinstance(streamed, StreamedTraceSoA)
        assert streamed.chunk == 8
        # Stateful windows are never shared.
        assert decode_trace(trace, 8) is not streamed
        assert len(decode_cache()) == 0

    def test_trace_shorter_than_one_chunk_stays_full(self, monkeypatch):
        """A forced chunk larger than the trace is a full decode — it
        takes the cached single-window shape, not a streamed one."""
        monkeypatch.setenv(CHUNK_ENV, "1024")
        trace = _trace(20)
        decoded = decode_trace(trace, 8)
        assert isinstance(decoded, TraceSoA)
        assert (decoded.chunk_start, decoded.chunk_end) == (0, 20)

    def test_garbage_chunk_env_ignored(self, monkeypatch):
        monkeypatch.setenv(CHUNK_ENV, "not-a-number")
        assert isinstance(decode_trace(_trace(20), 8), TraceSoA)


class TestDecodeCache:
    def test_lru_eviction_is_bounded(self):
        cache = TraceDecodeCache(capacity=2)
        traces = [_trace(10, name=f"t{i}") for i in range(3)]
        decoded = [TraceSoA(t, 4) for t in traces]
        for trace, soa in zip(traces, decoded):
            cache.store(trace, 4, soa)
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.lookup(traces[0], 4) is None  # oldest evicted
        assert cache.lookup(traces[2], 4) is decoded[2]

    def test_lookup_refreshes_lru_order(self):
        cache = TraceDecodeCache(capacity=2)
        traces = [_trace(10, name=f"t{i}") for i in range(3)]
        cache.store(traces[0], 4, TraceSoA(traces[0], 4))
        cache.store(traces[1], 4, TraceSoA(traces[1], 4))
        cache.lookup(traces[0], 4)  # touch: t1 becomes LRU
        cache.store(traces[2], 4, TraceSoA(traces[2], 4))
        assert cache.lookup(traces[0], 4) is not None
        assert cache.lookup(traces[1], 4) is None

    def test_dead_trace_drops_its_decode(self):
        cache = TraceDecodeCache(capacity=8)
        trace = _trace(10)
        cache.store(trace, 4, TraceSoA(trace, 4))
        assert len(cache) == 1
        del trace
        gc.collect()
        assert len(cache) == 0

    def test_stale_length_misses(self):
        cache = TraceDecodeCache(capacity=8)
        trace = _trace(10)
        cache.store(trace, 4, TraceSoA(trace, 4))
        trace.entries.append(TraceEntry(gap_cycles=1, bank_index=0, row=0))
        assert cache.lookup(trace, 4) is None
        assert len(cache) == 0

    def test_zero_capacity_stores_nothing(self):
        cache = TraceDecodeCache(capacity=0)
        trace = _trace(10)
        cache.store(trace, 4, TraceSoA(trace, 4))
        assert len(cache) == 0

    def test_cache_env_rebuilds_module_cache(self, monkeypatch):
        first = decode_cache()
        assert first.capacity == soa_module.DEFAULT_CACHE_SIZE
        monkeypatch.setenv(CACHE_ENV, "3")
        second = decode_cache()
        assert second is not first
        assert second.capacity == 3
        assert decode_cache() is second
