"""Unit tests for the workload characterization module."""

import pytest

from repro.workloads.stats import (
    WorkloadProfile,
    expected_tracker_spread,
    profile_traces,
)
from repro.workloads.synthetic import (
    random_access_trace,
    streaming_sweep_trace,
)
from repro.workloads.trace import CoreTrace, TraceEntry


def _trace(locations, writes=None):
    entries = [
        TraceEntry(
            gap_cycles=0,
            bank_index=bank,
            row=row,
            is_write=bool(writes and i in writes),
            instructions=1,
        )
        for i, (bank, row) in enumerate(locations)
    ]
    return CoreTrace(name="t", entries=entries)


class TestProfileTraces:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            profile_traces([CoreTrace(name="empty")])

    def test_basic_counts(self):
        profile = profile_traces(
            [_trace([(0, 1), (0, 1), (1, 2)], writes={2})]
        )
        assert profile.total_requests == 3
        assert profile.write_fraction == pytest.approx(1 / 3)
        assert profile.footprint_rows == 2
        assert profile.banks_touched == 2

    def test_burst_lengths(self):
        profile = profile_traces(
            [_trace([(0, 1), (0, 1), (0, 1), (0, 2)])]
        )
        assert profile.max_burst_length == 3
        assert profile.mean_burst_length == pytest.approx(2.0)

    def test_act_per_access_all_hits(self):
        profile = profile_traces([_trace([(0, 1)] * 10)])
        assert profile.act_per_access_estimate == pytest.approx(0.1)

    def test_act_per_access_all_misses(self):
        profile = profile_traces(
            [_trace([(0, i) for i in range(10)])]
        )
        assert profile.act_per_access_estimate == 1.0

    def test_reuse_distance(self):
        profile = profile_traces(
            [_trace([(0, 1), (0, 2), (0, 1), (0, 2)])]
        )
        assert profile.reuse_distance_p50 == 2

    def test_hottest_row_share(self):
        profile = profile_traces(
            [_trace([(0, 1), (0, 1), (0, 1), (0, 2)])]
        )
        assert profile.hottest_row_share == pytest.approx(0.75)

    def test_sweep_has_long_bursts_random_does_not(self):
        sweep = profile_traces(
            [streaming_sweep_trace(num_requests=512, accesses_per_row=16)]
        )
        rand = profile_traces(
            [random_access_trace(num_requests=512)]
        )
        assert sweep.mean_burst_length > 4 * rand.mean_burst_length
        assert rand.act_per_access_estimate > sweep.act_per_access_estimate

    def test_multi_core_interleaving(self):
        a = _trace([(0, 1)] * 4)
        b = _trace([(0, 2)] * 4)
        profile = profile_traces([a, b])
        # round-robin interleave alternates rows: every access misses
        assert profile.act_per_access_estimate == 1.0


class TestExpectedSpread:
    def test_benign_spread_near_burst_length(self):
        sweep = profile_traces(
            [streaming_sweep_trace(num_requests=2048,
                                   accesses_per_row=128,
                                   footprint_rows=4096)]
        )
        spread = expected_tracker_spread(sweep, n_entries=256, rfm_th=64)
        assert spread <= 200  # within the paper's AdTH range

    def test_hot_row_spread_scales_with_share(self):
        hot = profile_traces([_trace([(0, 1)] * 99 + [(0, 2)])])
        spread = expected_tracker_spread(hot, n_entries=16, rfm_th=64)
        assert spread > 30
