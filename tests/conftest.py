"""Shared fixtures: small system configurations that keep tests fast."""

import os

import pytest

from repro.params import DramOrganization, DramTimings, SystemConfig


@pytest.fixture(autouse=True)
def _isolated_sim_cache(tmp_path, monkeypatch):
    """Keep the engine's result cache out of ~/.cache during tests.

    Every test gets a fresh, throwaway cache directory (and campaign
    state directory), so driver runs always exercise the simulate path
    and never leave state behind.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "sim-cache"))
    monkeypatch.setenv("REPRO_CAMPAIGN_DIR", str(tmp_path / "campaigns"))
    # Chaos stays opt-in: a fault plan leaked from the environment (or
    # a prior test forgetting to clean up) must never perturb the
    # suite.  Tests that want injection set REPRO_FAULT_PLAN itself.
    monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
    # Telemetry: off unless a test sets REPRO_TELEMETRY itself — but
    # when the *outer* environment enabled it (the telemetry-smoke CI
    # lane runs the golden suites with telemetry on to prove
    # non-perturbation), keep it enabled and redirect the streams into
    # the test's own tmp dir.  Either way the module-level sink is
    # dropped so no test leaks an open events file into the next.
    if os.environ.get("REPRO_TELEMETRY"):
        monkeypatch.setenv("REPRO_TELEMETRY", str(tmp_path / "telemetry"))
    else:
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
    # Probes follow the same protocol: off unless a test opts in, but
    # an outer REPRO_PROBES (the probe-smoke CI step runs the golden
    # suite with probes on to prove non-perturbation) stays enabled,
    # redirected into the test's tmp dir.
    if os.environ.get("REPRO_PROBES"):
        monkeypatch.setenv("REPRO_PROBES", str(tmp_path / "probes"))
    else:
        monkeypatch.delenv("REPRO_PROBES", raising=False)
    monkeypatch.delenv("REPRO_PROBE_INTERVAL", raising=False)
    from repro import telemetry

    telemetry.reset()
    yield
    telemetry.reset()


@pytest.fixture
def timings() -> DramTimings:
    return DramTimings()


@pytest.fixture
def organization() -> DramOrganization:
    return DramOrganization()


@pytest.fixture
def small_config() -> SystemConfig:
    """One channel, eight banks — enough for scheduling behaviour."""
    return SystemConfig().with_organization(channels=1, banks_per_rank=8)
