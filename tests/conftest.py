"""Shared fixtures: small system configurations that keep tests fast."""

import pytest

from repro.params import DramOrganization, DramTimings, SystemConfig


@pytest.fixture
def timings() -> DramTimings:
    return DramTimings()


@pytest.fixture
def organization() -> DramOrganization:
    return DramOrganization()


@pytest.fixture
def small_config() -> SystemConfig:
    """One channel, eight banks — enough for scheduling behaviour."""
    return SystemConfig().with_organization(channels=1, banks_per_rank=8)
