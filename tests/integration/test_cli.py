"""Integration: the command-line interface."""

import json

import pytest

from repro.cli import main


class TestCliCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out and "table4" in out

    def test_schemes(self, capsys):
        assert main(["schemes"]) == 0
        out = capsys.readouterr().out
        assert "mithril" in out and "blockhammer" in out

    def test_configure(self, capsys):
        assert main(["configure", "6250"]) == 0
        out = capsys.readouterr().out
        assert "RFM_TH" in out
        assert "128" in out

    def test_configure_infeasible(self, capsys):
        assert main(["configure", "10"]) == 1

    def test_experiment_table4(self, capsys):
        assert main(["experiment", "table4"]) == 0
        out = capsys.readouterr().out
        assert "Mithril-32 @ DRAM" in out

    def test_experiment_json(self, capsys):
        assert main(["experiment", "fig2", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["arr_graphene_safe_flip_th"] > 0

    def test_safety_mithril_safe(self, capsys):
        code = main([
            "safety", "mithril", "--attack", "double-sided",
            "--acts", "20000", "--flip-th", "3125",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "flips:             0" in out

    def test_safety_none_flips(self, capsys):
        code = main([
            "safety", "none", "--attack", "double-sided",
            "--acts", "20000", "--flip-th", "3125",
        ])
        assert code == 1

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])


class TestCacheCommand:
    def test_gc_dead_generation(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        dead = tmp_path / "deadbeef00000000"
        dead.mkdir(parents=True)
        (dead / "entry.json").write_text("{}")
        assert main(["cache"]) == 0
        assert "dead generations" in capsys.readouterr().out
        assert main(["cache", "--gc", "deadbeef00000000"]) == 0
        assert "removed 1 cached result" in capsys.readouterr().out
        assert not dead.exists()

    def test_gc_stale_spares_the_live_generation(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.engine import code_version

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        live = tmp_path / code_version()
        live.mkdir(parents=True)
        (live / "keep.json").write_text("{}")
        dead = tmp_path / "0123456789abcdef"
        dead.mkdir()
        (dead / "drop.json").write_text("{}")
        assert main(["cache", "--gc", "stale"]) == 0
        assert (live / "keep.json").exists()
        assert not dead.exists()

    def test_gc_refuses_the_live_generation(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.engine import code_version

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["cache", "--gc", code_version()]) == 1
        assert "refusing" in capsys.readouterr().out

    def _seed_live_entry(self, tmp_path, monkeypatch):
        from repro.engine import ResultCache, SimJob, WorkloadSpec
        from repro.sim.metrics import SimulationResult
        from repro.types import EnergyCounts

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        job = SimJob(
            workload=WorkloadSpec.make("fft", seed=21, scale=0.1),
            scheme="mithril",
        )
        ResultCache().put(job, SimulationResult(
            scheme_name="MithrilScheme",
            total_cycles=100,
            per_core_instructions=[1],
            per_core_finish_cycles=[100],
            energy=EnergyCounts(acts=1),
            acts=1, row_hits=0, row_misses=1,
        ))
        return job

    def test_stats_reports_live_generation(
        self, tmp_path, monkeypatch, capsys
    ):
        self._seed_live_entry(tmp_path, monkeypatch)
        assert main(["cache", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "(live)" in out
        assert "entries" in out

    def test_stats_on_empty_cache(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "nothing"))
        assert main(["cache", "--stats"]) == 0
        assert "empty" in capsys.readouterr().out

    def test_stats_covers_flat_dead_generations(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        dead = tmp_path / "deadbeef00000000"
        dead.mkdir(parents=True)
        (dead / "entry.json").write_text('{"job": {"scheme": "none"}}')
        assert main(["cache", "--stats"]) == 0
        assert "deadbeef00000000" in capsys.readouterr().out

    def test_query_by_scheme(self, tmp_path, monkeypatch, capsys):
        self._seed_live_entry(tmp_path, monkeypatch)
        assert main(["cache", "--query", "scheme=mithril"]) == 0
        out = capsys.readouterr().out
        assert "1 entry" in out
        assert main(["cache", "--query", "scheme=graphene"]) == 0
        assert "0 entries" in capsys.readouterr().out

    def test_query_bad_key_is_a_clean_error(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["cache", "--query", "nonsense=1"]) == 1
        assert "unknown query key" in capsys.readouterr().out
        assert main(["cache", "--query", "no-equals"]) == 1
        capsys.readouterr()
        assert main(["cache", "--query", "flip_th=abc"]) == 1
        assert "must be an integer" in capsys.readouterr().out

    def test_migrate_moves_flat_entries(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.engine import ResultCache

        job = self._seed_live_entry(tmp_path, monkeypatch)
        cache = ResultCache()
        cache.path_for(job).rename(cache.flat_path_for(job))
        assert main(["cache", "--migrate"]) == 0
        assert "moved 1 flat entry" in capsys.readouterr().out
        assert cache.path_for(job).exists()
        assert main(["cache", "--migrate"]) == 0
        assert "nothing to migrate" in capsys.readouterr().out


class TestTracesCommands:
    def test_list(self, capsys):
        assert main(["traces", "list"]) == 0
        out = capsys.readouterr().out
        assert "capacity-pressure" in out
        assert "dramsim3-csv" in out
        assert "xor-bank" in out

    def test_synth_check_characterize_roundtrip(self, tmp_path, capsys):
        out_dir = tmp_path / "set"
        assert main([
            "traces", "synth", "row-conflict-heavy", "-o", str(out_dir),
            "--scale", "0.1", "--cores", "2", "--check",
            "--format", "binary", "--gzip",
        ]) == 0
        out = capsys.readouterr().out
        assert "design targets met" in out
        assert (out_dir / "manifest.json").exists()
        assert main(["traces", "characterize", str(out_dir), "--json",
                     "--per-core"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["aggregate"]["act_per_access"] >= 0.95
        assert len(payload["cores"]) == 2

    def test_synth_unknown_kind_is_a_clean_error(self, tmp_path, capsys):
        assert main(["traces", "synth", "no-such-kind",
                     "-o", str(tmp_path / "x")]) == 1
        assert "cannot synthesize" in capsys.readouterr().out

    def test_synth_kind_needing_params_is_a_clean_error(
        self, tmp_path, capsys
    ):
        # `attack` is listed but its builder requires `pattern`
        assert main(["traces", "synth", "attack",
                     "-o", str(tmp_path / "x")]) == 1
        assert "cannot synthesize 'attack'" in capsys.readouterr().out

    def test_ingest_missing_file_is_a_clean_error(self, tmp_path, capsys):
        assert main(["traces", "ingest", str(tmp_path / "absent.csv"),
                     "-o", str(tmp_path / "x")]) == 1
        assert "ingest failed" in capsys.readouterr().out

    def test_characterize_non_traceset_is_a_clean_error(
        self, tmp_path, capsys
    ):
        assert main(["traces", "characterize", str(tmp_path)]) == 1
        assert "cannot characterize" in capsys.readouterr().out

    def test_ingest_csv(self, tmp_path, capsys):
        source = tmp_path / "log.csv"
        source.write_text("addr,cycle,op\n0x40,10,READ\n0x80,30,WRITE\n")
        out_dir = tmp_path / "imported"
        assert main([
            "traces", "ingest", str(source), "-o", str(out_dir),
            "--name", "import-test", "--mapping", "bank-row-col",
        ]) == 0
        assert "ingested 1 trace(s), 2 requests" in capsys.readouterr().out
        manifest = json.loads((out_dir / "manifest.json").read_text())
        assert manifest["name"] == "import-test"
        sources = manifest["provenance"]["sources"]
        assert sources[0]["mapping"] == "bank-row-col"

    def test_smoke_covers_every_kind(self, capsys):
        from repro.engine import workload_kinds

        assert main(["traces", "smoke", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        for kind in workload_kinds():
            assert kind in out

    def test_characterize_shipped_example_set(self, capsys):
        from pathlib import Path

        example = (Path(__file__).resolve().parents[2]
                   / "examples" / "traces" / "example-set")
        assert main(["traces", "characterize", str(example)]) == 0
        assert "act_per_access" in capsys.readouterr().out


class TestProbeCli:
    """`repro probe report` and the probe-aware trace export."""

    def _record_stream(self, tmp_path, monkeypatch, scheme="mithril"):
        from repro.engine.executor import materialize_job
        from repro.engine.job import SimJob, WorkloadSpec
        from repro.sim.system import make_system

        directory = tmp_path / "probes"
        monkeypatch.setenv("REPRO_PROBES", str(directory))
        monkeypatch.setenv("REPRO_PROBE_INTERVAL", "5000")
        spec = WorkloadSpec.make("mix-high", scale=0.2, seed=11)
        job = SimJob(workload=spec, scheme=scheme, flip_th=2500,
                     scale=0.2)
        traces, factory, config, rfm_th = materialize_job(job)
        make_system(
            traces, scheme_factory=factory, config=config,
            rfm_th=rfm_th, flip_th=job.flip_th, backend="scalar",
        ).run()
        return directory

    def test_probe_report_markdown(self, tmp_path, monkeypatch, capsys):
        directory = self._record_stream(tmp_path, monkeypatch)
        assert main(["probe", "report",
                     "--probes-dir", str(directory)]) == 0
        out = capsys.readouterr().out
        assert "Probe report" in out
        assert "MithrilScheme" in out
        assert "p95" in out

    def test_probe_report_json_and_output(self, tmp_path, monkeypatch,
                                          capsys):
        directory = self._record_stream(tmp_path, monkeypatch)
        target = tmp_path / "report.json"
        assert main(["probe", "report", "--probes-dir", str(directory),
                     "--json", "--output", str(target)]) == 0
        report = json.loads(target.read_text())
        assert report["streams"] == 1
        assert report["runs"][0]["sealed"]
        assert "p99" in report["runs"][0]["acts_per_interval"]

    def test_probe_report_reads_env_dir(self, tmp_path, monkeypatch,
                                        capsys):
        self._record_stream(tmp_path, monkeypatch)
        # REPRO_PROBES is still set: no --probes-dir needed
        assert main(["probe", "report"]) == 0
        assert "Probe report" in capsys.readouterr().out

    def test_probe_report_errors_without_streams(self, tmp_path,
                                                 monkeypatch, capsys):
        monkeypatch.delenv("REPRO_PROBES", raising=False)
        assert main(["probe", "report"]) == 1
        assert "no probe directory" in capsys.readouterr().out
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["probe", "report",
                     "--probes-dir", str(empty)]) == 1
        assert "no probe streams" in capsys.readouterr().out

    def test_trace_export_includes_probe_tracks(self, tmp_path,
                                                monkeypatch, capsys):
        from repro import telemetry

        probes = self._record_stream(tmp_path, monkeypatch)
        tel_dir = tmp_path / "tel"
        monkeypatch.setenv("REPRO_TELEMETRY", str(tel_dir))
        telemetry.reset()
        telemetry.get().event("marker")
        output = tmp_path / "trace.json"
        assert main(["trace", "export",
                     "--telemetry-dir", str(tel_dir),
                     "--probes-dir", str(probes),
                     "--output", str(output)]) == 0
        payload = json.loads(output.read_text())
        counters = [e for e in payload["traceEvents"]
                    if e.get("ph") == "C"]
        assert counters
        assert any(e["name"] == "probe.acts" for e in counters)
