"""Integration: the command-line interface."""

import json

import pytest

from repro.cli import main


class TestCliCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out and "table4" in out

    def test_schemes(self, capsys):
        assert main(["schemes"]) == 0
        out = capsys.readouterr().out
        assert "mithril" in out and "blockhammer" in out

    def test_configure(self, capsys):
        assert main(["configure", "6250"]) == 0
        out = capsys.readouterr().out
        assert "RFM_TH" in out
        assert "128" in out

    def test_configure_infeasible(self, capsys):
        assert main(["configure", "10"]) == 1

    def test_experiment_table4(self, capsys):
        assert main(["experiment", "table4"]) == 0
        out = capsys.readouterr().out
        assert "Mithril-32 @ DRAM" in out

    def test_experiment_json(self, capsys):
        assert main(["experiment", "fig2", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["arr_graphene_safe_flip_th"] > 0

    def test_safety_mithril_safe(self, capsys):
        code = main([
            "safety", "mithril", "--attack", "double-sided",
            "--acts", "20000", "--flip-th", "3125",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "flips:             0" in out

    def test_safety_none_flips(self, capsys):
        code = main([
            "safety", "none", "--attack", "double-sided",
            "--acts", "20000", "--flip-th", "3125",
        ])
        assert code == 1

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])
