"""Integration: every example script runs to completion.

The examples are the public face of the library; a refactor that breaks
them must fail CI.  Each runs in a subprocess with a generous timeout.
"""

import subprocess
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.slow

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[script.stem for script in EXAMPLES]
)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples must print their findings"


def test_examples_exist():
    names = {script.stem for script in EXAMPLES}
    assert "quickstart" in names
    assert len(EXAMPLES) >= 3
