"""Probe streams are byte-identical across backends and perturb nothing.

The probe layer (:mod:`repro.sim.probes`) samples scheme internals at
fixed cycle intervals.  Its exactness contract — both backends sample
at the same logical point in the event stream — is gated here: for
every scheme family the scalar and turbo backends must emit probe
streams whose file contents are *equal bytes*, while the
``SimulationResult`` stays identical to a probes-off run.  The battery
also covers the chunked SoA decode path, seal verification, the
probes-off zero-file guarantee, and the report/Perfetto renderers.
"""

import json

import pytest

from repro.engine.executor import materialize_job
from repro.engine.job import SimJob, WorkloadSpec
from repro.sim.probes import probe_files, read_probe_stream
from repro.sim.system import make_system


def _job(scheme, workload="mix-high", seed=11, **kwargs):
    spec = WorkloadSpec.make(workload, scale=0.2, seed=seed)
    return SimJob(workload=spec, scheme=scheme, flip_th=2500,
                  scale=0.2, **kwargs)


def _run_probed(job, backend, directory, monkeypatch, interval="5000"):
    """Run ``job`` on ``backend`` with probes into ``directory``."""
    monkeypatch.setenv("REPRO_PROBES", str(directory))
    monkeypatch.setenv("REPRO_PROBE_INTERVAL", interval)
    traces, factory, config, rfm_th = materialize_job(job)
    system = make_system(
        traces,
        scheme_factory=factory,
        config=config,
        rfm_th=rfm_th,
        flip_th=job.flip_th,
        mlp=job.mlp,
        track_hammer=job.track_hammer,
        backend=backend,
    )
    return system.run(max_cycles=job.max_cycles)


def _run_plain(job, backend, monkeypatch):
    monkeypatch.delenv("REPRO_PROBES", raising=False)
    traces, factory, config, rfm_th = materialize_job(job)
    system = make_system(
        traces,
        scheme_factory=factory,
        config=config,
        rfm_th=rfm_th,
        flip_th=job.flip_th,
        mlp=job.mlp,
        track_hammer=job.track_hammer,
        backend=backend,
    )
    return system.run(max_cycles=job.max_cycles)


def _single_stream(directory):
    [path] = probe_files(directory)
    return path


class TestCrossBackendParity:
    """Scalar vs turbo probe streams, byte for byte, per scheme."""

    @pytest.mark.parametrize(
        "scheme",
        ["none", "mithril", "mithril+", "graphene", "blockhammer",
         "twice"],
    )
    def test_streams_byte_identical(self, scheme, tmp_path, monkeypatch):
        pytest.importorskip("numpy", reason="turbo backend needs numpy")
        job = _job(scheme)
        results = {}
        texts = {}
        for backend in ("scalar", "turbo"):
            directory = tmp_path / backend
            results[backend] = _run_probed(
                job, backend, directory, monkeypatch
            )
            path = _single_stream(directory)
            texts[backend] = path.read_text()
            records, sealed = read_probe_stream(path)
            assert sealed, f"{backend} stream not sealed"
            assert any(r["k"] == "sample" for r in records)
        assert results["scalar"] == results["turbo"]
        assert texts["scalar"] == texts["turbo"]

    def test_parity_through_chunked_decode(self, tmp_path, monkeypatch):
        pytest.importorskip("numpy", reason="turbo backend needs numpy")
        monkeypatch.setenv("REPRO_SOA_CHUNK", "64")
        job = _job("mithril")
        texts = {}
        for backend in ("scalar", "turbo"):
            directory = tmp_path / backend
            _run_probed(job, backend, directory, monkeypatch)
            texts[backend] = _single_stream(directory).read_text()
        assert texts["scalar"] == texts["turbo"]


class TestNonPerturbation:
    """Probing must never change what the simulation computes."""

    @pytest.mark.parametrize("backend", ["scalar", "turbo"])
    @pytest.mark.parametrize("scheme", ["mithril", "blockhammer"])
    def test_results_match_probes_off(self, backend, scheme, tmp_path,
                                      monkeypatch):
        if backend == "turbo":
            pytest.importorskip("numpy", reason="turbo needs numpy")
        job = _job(scheme)
        plain = _run_plain(job, backend, monkeypatch)
        probed = _run_probed(job, backend, tmp_path / "p", monkeypatch)
        assert plain == probed

    def test_probes_off_writes_no_files(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_PROBES", raising=False)
        _run_plain(_job("mithril"), "scalar", monkeypatch)
        assert probe_files(tmp_path) == []
        assert not list(tmp_path.glob("probes-*"))


class TestStreamContents:
    def test_records_are_canonical_and_sealed(self, tmp_path,
                                              monkeypatch):
        _run_probed(_job("mithril"), "scalar", tmp_path, monkeypatch)
        path = _single_stream(tmp_path)
        lines = path.read_text().splitlines()
        for line in lines:
            record = json.loads(line)
            # canonical encoding round-trips exactly
            assert line == json.dumps(
                record, sort_keys=True, separators=(",", ":")
            )
        kinds = [json.loads(line)["k"] for line in lines]
        assert kinds[0] == "header"
        assert kinds[-1] == "seal"
        assert kinds[-2] == "final"
        assert kinds.count("sample") >= 2

    def test_sample_schedule_and_monotone_counters(self, tmp_path,
                                                   monkeypatch):
        _run_probed(_job("mithril"), "scalar", tmp_path, monkeypatch,
                    interval="5000")
        records, sealed = read_probe_stream(_single_stream(tmp_path))
        assert sealed
        samples = [r for r in records if r["k"] == "sample"]
        cycles = [s["cycle"] for s in samples]
        assert cycles == sorted(set(cycles))
        assert all(c >= 5000 for c in cycles)
        acts = [sum(s["acts"]) for s in samples]
        assert acts == sorted(acts)
        raa_caps = [max(s["raa"]) for s in samples]
        assert all(cap >= 0 for cap in raa_caps)

    def test_torn_stream_reads_unsealed(self, tmp_path, monkeypatch):
        _run_probed(_job("mithril"), "scalar", tmp_path, monkeypatch)
        path = _single_stream(tmp_path)
        text = path.read_text()
        # chop the seal line in half: a crash mid-append
        path.write_text(text[: len(text) - 20])
        records, sealed = read_probe_stream(path)
        assert not sealed
        assert any(r["k"] == "sample" for r in records)


class TestProbeReport:
    def test_report_renders_percentile_panels(self, tmp_path,
                                              monkeypatch):
        from repro.analysis.probe_report import (
            build_probe_report,
            format_probe_report,
        )

        for scheme in ("mithril", "blockhammer"):
            _run_probed(_job(scheme), "scalar", tmp_path, monkeypatch)
        report = build_probe_report(tmp_path)
        assert report["streams"] == 2
        schemes = {run["scheme"] for run in report["runs"]}
        assert schemes == {"MithrilScheme", "BlockHammerScheme"}
        for run in report["runs"]:
            assert run["sealed"]
            summary = run["acts_per_interval"]
            for key in ("p50", "p95", "p99"):
                assert key in summary
        text = format_probe_report(report)
        assert "p50" in text and "p95" in text and "p99" in text
        assert "CbS" in text
        assert "throttle latency" in text

    def test_perfetto_probe_tracks_validate(self, tmp_path,
                                            monkeypatch):
        from repro.telemetry.perfetto import (
            probe_counter_events,
            validate_perfetto,
        )

        _run_probed(_job("mithril"), "scalar", tmp_path, monkeypatch)
        events = probe_counter_events(tmp_path)
        counters = [e for e in events if e.get("ph") == "C"]
        assert counters
        names = {e["name"] for e in counters}
        assert {"probe.acts", "probe.raa", "probe.cbs_entries"} <= names
        assert validate_perfetto({"traceEvents": events}) == []
