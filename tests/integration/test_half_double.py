"""Integration: Half-Double-style non-adjacent RowHammer (Section V-C)."""

import pytest

pytestmark = pytest.mark.slow

from repro.core.config import min_entries_for
from repro.core.mithril import MithrilScheme
from repro.protection import NoProtection
from repro.verify.adversary import half_double_stream
from repro.verify.safety import run_safety_trace

FLIP_TH = 3_125
RFM_TH = 64
BLAST_WEIGHTS = (1.0, 0.25)
ACTS = 200_000


class TestHalfDouble:
    def test_unprotected_half_double_flips(self):
        report = run_safety_trace(
            NoProtection(),
            half_double_stream(1_000, ACTS * 3),
            FLIP_TH,
            blast_weights=BLAST_WEIGHTS,
        )
        assert not report.safe

    def test_adjacent_only_mithril_leaks_distance2(self):
        """Blast radius 1 refreshes only the direct neighbours; the
        distance-2 victims keep accumulating quarter-strength hits."""
        n = min_entries_for(FLIP_TH, RFM_TH)
        scheme = MithrilScheme(n_entries=n, rfm_th=RFM_TH, blast_radius=1)
        report = run_safety_trace(
            scheme,
            half_double_stream(1_000, ACTS),
            FLIP_TH,
            rfm_th=RFM_TH,
            blast_weights=BLAST_WEIGHTS,
        )
        wide = min_entries_for(
            FLIP_TH, RFM_TH, blast_multiplier=3.5
        )
        wide_scheme = MithrilScheme(
            n_entries=wide, rfm_th=RFM_TH, blast_radius=2
        )
        wide_report = run_safety_trace(
            wide_scheme,
            half_double_stream(1_000, ACTS),
            FLIP_TH,
            rfm_th=RFM_TH,
            blast_weights=BLAST_WEIGHTS,
        )
        assert wide_report.safe
        assert (
            wide_report.max_disturbance <= report.max_disturbance
        )

    def test_range_aware_config_protects(self):
        n = min_entries_for(FLIP_TH, RFM_TH, blast_multiplier=3.5)
        scheme = MithrilScheme(n_entries=n, rfm_th=RFM_TH, blast_radius=2)
        report = run_safety_trace(
            scheme,
            half_double_stream(1_000, ACTS),
            FLIP_TH,
            rfm_th=RFM_TH,
            blast_weights=BLAST_WEIGHTS,
        )
        assert report.safe
        assert report.max_disturbance < FLIP_TH / 2

    def test_victims_refreshed_two_deep(self):
        scheme = MithrilScheme(n_entries=16, rfm_th=4, blast_radius=2)
        scheme.on_activate(100, 0)
        victims = scheme.on_rfm(0)
        assert sorted(victims) == [98, 99, 101, 102]
