"""Scalar and turbo backends agree beyond the golden matrix.

The golden suite pins the default configuration (BLISS scheduler,
minimalist-open pages).  This battery drives the *other* fused-path
branches — FR-FCFS scheduling, open/closed page policies, ARR schemes
through the generic tracker call, RFM issue, non-default hammer blast
ranges (which drop the hammer fast path), and non-fusable component
subclasses (which drop the whole fused drain) — asserting exact
``SimulationResult`` equality between backends every time.
"""

import dataclasses

import pytest

pytest.importorskip("numpy", reason="turbo backend needs numpy")

from repro.engine.executor import materialize_job
from repro.engine.job import SimJob, WorkloadSpec
from repro.mc.scheduler import BlissScheduler
from repro.sim.system import SimulatedSystem, make_system
from repro.sim.turbo import TurboSimulatedSystem


#: scheme name -> expected arena shape on the turbo system (None =
#: no arena; the fused drain keeps the per-bank inline handlers).
_ARENA_SHAPE = {
    "none": None,
    "mithril": "mithril",
    "mithril+": "mithril",
    "graphene": "graphene",
    "blockhammer": "blockhammer",
    "twice": None,
    "para": None,
    "cbt": None,
}


def _assert_arena_shape(system, shape):
    arenas = system._arenas
    if shape is None:
        assert arenas is None
        return
    assert arenas is not None
    if shape == "blockhammer":
        assert arenas.blockhammer is not None
        assert arenas.cbs is None and arenas.raa is None
    else:
        assert arenas.cbs is not None and arenas.cbs.kind == shape
        assert arenas.blockhammer is None
        # Mithril banks carry fused RFM logic -> shared RAA vector.
        assert (arenas.raa is not None) == (shape == "mithril")


def _run_both(job, expect_fused=True, expect_arena="unchecked"):
    traces, factory, config, rfm_th = materialize_job(job)
    results = {}
    for backend in ("scalar", "turbo"):
        system = make_system(
            traces,
            scheme_factory=factory,
            config=config,
            rfm_th=rfm_th,
            flip_th=job.flip_th,
            mlp=job.mlp,
            track_hammer=job.track_hammer,
            backend=backend,
        )
        if backend == "turbo":
            assert isinstance(system, TurboSimulatedSystem)
            assert system._fused is expect_fused
            if expect_arena != "unchecked":
                _assert_arena_shape(system, expect_arena)
        results[backend] = system.run(max_cycles=job.max_cycles)
    assert results["scalar"] == results["turbo"]
    return results["scalar"]


def _job(scheme, workload="mix-high", seed=11, **kwargs):
    spec = WorkloadSpec.make(workload, scale=0.2, seed=seed)
    return SimJob(workload=spec, scheme=scheme, flip_th=2500,
                  scale=0.2, **kwargs)


class TestConfigMatrix:
    @pytest.mark.parametrize("scheduler", ["bliss", "frfcfs"])
    @pytest.mark.parametrize(
        "page_policy", ["open", "closed", "minimalist-open"]
    )
    def test_scheduler_page_policy_grid(self, scheduler, page_policy):
        _run_both(
            _job(
                "mithril",
                config_overrides=(
                    ("scheduler", scheduler),
                    ("page_policy", page_policy),
                ),
            )
        )

    @pytest.mark.parametrize(
        "scheme", ["none", "mithril", "mithril+", "graphene",
                   "blockhammer", "twice", "para", "cbt"]
    )
    def test_all_schemes_frfcfs(self, scheme):
        """FR-FCFS exercises the non-BLISS fused branch per scheme."""
        _run_both(
            _job(scheme, config_overrides=(("scheduler", "frfcfs"),))
        )

    @pytest.mark.parametrize(
        "scheme", ["twice", "para", "cbt"]
    )
    def test_arr_schemes_generic_tracker_path(self, scheme):
        """Schemes without an inline specialization use the real call."""
        spec = WorkloadSpec.make(
            "attack", scale=0.2, pattern="multi-sided", seed=31
        )
        _run_both(
            SimJob(workload=spec, scheme=scheme, flip_th=2500, scale=0.2)
        )

    def test_track_hammer_off(self):
        _run_both(_job("mithril", track_hammer=False))

    def test_max_cycles_cutoff(self):
        _run_both(_job("mithril", max_cycles=20_000))


class TestFusabilityFallback:
    def test_subclassed_scheduler_disables_fusion(self):
        class PatchedBliss(BlissScheduler):
            pass

        job = _job("mithril")
        traces, factory, config, rfm_th = materialize_job(job)
        scalar = SimulatedSystem(
            traces, scheme_factory=factory, config=config,
            rfm_th=rfm_th, flip_th=job.flip_th,
        )
        turbo = TurboSimulatedSystem(
            traces, scheme_factory=factory, config=config,
            rfm_th=rfm_th, flip_th=job.flip_th,
        )
        turbo._schedulers = [
            PatchedBliss() for _ in turbo._schedulers
        ]
        scalar._schedulers = [
            PatchedBliss() for _ in scalar._schedulers
        ]
        turbo._fused = turbo._snapshot_fusability()
        assert turbo._fused is False  # falls back to scalar handlers
        assert scalar.run() == turbo.run()

    def test_nondefault_blast_weights_drop_hammer_fast_path(self):
        job = _job("mithril")
        traces, factory, config, rfm_th = materialize_job(job)

        def build(cls):
            system = cls(
                traces, scheme_factory=factory, config=config,
                rfm_th=rfm_th, flip_th=job.flip_th,
            )
            for controller in system.banks:
                controller.hammer.blast_weights = (1.0, 0.25)
            return system

        turbo = build(TurboSimulatedSystem)
        turbo._fused = turbo._snapshot_fusability()
        assert turbo._fused is True
        assert not any(turbo._fast_hammer)  # falls back to the call
        assert build(SimulatedSystem).run() == turbo.run()

    def test_instance_patched_scheme_uses_generic_call(self):
        job = _job("mithril")
        traces, factory, config, rfm_th = materialize_job(job)
        turbo = TurboSimulatedSystem(
            traces, scheme_factory=factory, config=config,
            rfm_th=rfm_th, flip_th=job.flip_th,
        )
        calls = []
        target = turbo.banks[0].scheme
        original = type(target).on_activate

        def spy(row, cycle):
            calls.append(row)
            return original(target, row, cycle)

        target.on_activate = spy
        turbo._fused = turbo._snapshot_fusability()
        assert turbo._fused is True
        from repro.sim.turbo import _ACT_GENERIC, _ACT_MITHRIL

        assert turbo._act_mode[0] == _ACT_GENERIC
        assert all(
            mode == _ACT_MITHRIL for mode in turbo._act_mode[1:]
        )
        scalar = SimulatedSystem(
            traces, scheme_factory=factory, config=config,
            rfm_th=rfm_th, flip_th=job.flip_th,
        )
        assert scalar.run() == turbo.run()
        assert calls  # the patched hook really ran

    def test_rerun_refused(self):
        job = _job("none")
        traces, factory, config, rfm_th = materialize_job(job)
        turbo = TurboSimulatedSystem(
            traces, scheme_factory=factory, config=config,
            rfm_th=rfm_th, flip_th=job.flip_th,
        )
        turbo.run()
        with pytest.raises(RuntimeError, match="only run once"):
            turbo.run()


class TestArenas:
    """Cross-bank arenas engage for uniform stock schemes and stay
    byte-identical to the scalar backend; anything mixed or non-stock
    drops to the exact per-bank inline handlers."""

    @pytest.mark.parametrize(
        "scheme", ["none", "mithril", "mithril+", "graphene",
                   "blockhammer", "twice"]
    )
    def test_arena_engagement_and_equality(self, scheme):
        _run_both(_job(scheme), expect_arena=_ARENA_SHAPE[scheme])

    def test_mixed_schemes_fused_without_arena(self):
        """Alternating stock schemes: each bank still gets its inline
        specialization (fused), but no arena can span them — and the
        scalar fallback stays exact."""
        from repro.core.mithril import MithrilScheme
        from repro.mitigations.graphene import GrapheneScheme

        job = _job("mithril")
        traces, _factory, config, rfm_th = materialize_job(job)

        def alternating_factory():
            state = {"count": 0}

            def factory():
                state["count"] += 1
                if state["count"] % 2:
                    return MithrilScheme()
                return GrapheneScheme(flip_th=job.flip_th)

            return factory

        scalar = SimulatedSystem(
            traces, scheme_factory=alternating_factory(), config=config,
            rfm_th=rfm_th, flip_th=job.flip_th,
        )
        turbo = TurboSimulatedSystem(
            traces, scheme_factory=alternating_factory(), config=config,
            rfm_th=rfm_th, flip_th=job.flip_th,
        )
        assert turbo._fused is True
        assert turbo._arenas is None
        assert scalar.run() == turbo.run()

    def test_raa_write_back_matches_scalar(self):
        """The shared RAA vector must land back in each bank's
        RfmIssueLogic after the run."""
        job = _job("mithril+")
        traces, factory, config, rfm_th = materialize_job(job)
        systems = {}
        for cls in (SimulatedSystem, TurboSimulatedSystem):
            system = cls(
                traces, scheme_factory=factory, config=config,
                rfm_th=rfm_th, flip_th=job.flip_th,
            )
            system.run()
            systems[cls] = system
        scalar, turbo = systems[SimulatedSystem], systems[TurboSimulatedSystem]
        assert turbo._arenas is not None and turbo._arenas.raa is not None
        assert [
            controller.rfm_logic.raa.value for controller in turbo.banks
        ] == [
            controller.rfm_logic.raa.value for controller in scalar.banks
        ]

    def test_blockhammer_write_back_matches_scalar(self):
        """Post-run CBF counters, rotation phase, and blacklists on the
        scheme objects equal the scalar backend's (the arena owns the
        state during the run; write_back restores it)."""
        spec = WorkloadSpec.make(
            "attack", scale=0.2, pattern="multi-sided", seed=31
        )
        job = SimJob(workload=spec, scheme="blockhammer",
                     flip_th=2500, scale=0.2)
        traces, factory, config, rfm_th = materialize_job(job)
        schemes = {}
        for cls in (SimulatedSystem, TurboSimulatedSystem):
            system = cls(
                traces, scheme_factory=factory, config=config,
                rfm_th=rfm_th, flip_th=job.flip_th,
            )
            system.run()
            schemes[cls] = [controller.scheme for controller in system.banks]
        for scalar, turbo in zip(
            schemes[SimulatedSystem], schemes[TurboSimulatedSystem]
        ):
            assert scalar._release == turbo._release
            assert scalar.blacklisted_rows_seen == turbo.blacklisted_rows_seen
            assert scalar.cbf._active == turbo.cbf._active
            assert scalar.cbf._since_swap == turbo.cbf._since_swap
            for scalar_filter, turbo_filter in zip(
                scalar.cbf._filters, turbo.cbf._filters
            ):
                assert list(scalar_filter._counters) == list(
                    turbo_filter._counters
                )


class TestChunkedDecode:
    """Streamed chunked SoA decode is byte-identical to the full
    decode — against both the unchunked turbo run and the scalar
    backend — with the arenas active."""

    @pytest.mark.parametrize(
        "scheme", ["none", "mithril", "graphene", "blockhammer"]
    )
    def test_chunked_vs_scalar(self, scheme, monkeypatch):
        monkeypatch.setenv("REPRO_SOA_CHUNK", "64")
        _run_both(_job(scheme), expect_arena=_ARENA_SHAPE[scheme])

    def test_chunked_equals_unchunked_turbo(self, monkeypatch):
        from repro.sim.soa import StreamedTraceSoA

        job = _job("mithril")
        traces, factory, config, rfm_th = materialize_job(job)

        def build():
            return TurboSimulatedSystem(
                traces, scheme_factory=factory, config=config,
                rfm_th=rfm_th, flip_th=job.flip_th,
            )

        full = build().run()
        monkeypatch.setenv("REPRO_SOA_CHUNK", "64")
        chunked_system = build()
        assert all(
            isinstance(soa, StreamedTraceSoA)
            for soa in chunked_system._soa
        )
        assert chunked_system.run() == full
        # The windows really streamed (several loads per trace).
        assert all(soa.loads > 1 for soa in chunked_system._soa)


class TestScaleInvariants:
    def test_config_replace_timings_still_identical(self):
        from repro.params import DEFAULT_CONFIG

        config = dataclasses.replace(DEFAULT_CONFIG)
        job = _job("blockhammer")
        traces, factory, _config, rfm_th = materialize_job(job)
        scalar = SimulatedSystem(
            traces, scheme_factory=factory, config=config,
            rfm_th=rfm_th, flip_th=job.flip_th,
        )
        turbo = TurboSimulatedSystem(
            traces, scheme_factory=factory, config=config,
            rfm_th=rfm_th, flip_th=job.flip_th,
        )
        assert scalar.run() == turbo.run()
