"""Integration: resumable campaigns end to end.

Covers the ISSUE's campaign acceptance criteria at CI scale:

* a killed campaign resumes with zero re-simulated completed points
  (asserted through ``run_jobs.last_stats`` aggregation);
* the manifest converges — reruns of a complete campaign submit
  nothing and leave the completion set untouched;
* ``campaign run stress-panel`` yields a report with per-family
  slowdown panels for both figure experiments.
"""

import json

import pytest

import repro.campaigns.executor as campaign_executor
from repro.campaigns import (
    CampaignManifest,
    CampaignSpec,
    ExperimentSpec,
    build_report,
    format_report,
    get_campaign,
    manifest_path,
    plan_campaign,
    run_campaign,
)
from repro.engine.executor import run_jobs

TINY = 0.05


def _tiny_spec():
    """One fig11 sweep: 12 distinct points at trivial scale."""
    return CampaignSpec(
        name="resume-test",
        experiments=[
            ExperimentSpec(
                name="f11",
                kind="fig11",
                params=dict(
                    scale=TINY, flip_thresholds=[6_250],
                    schemes=["mithril"], attack_seeds=[31],
                ),
            )
        ],
    )


class TestResumability:
    def test_killed_campaign_resumes_without_resimulating(
        self, monkeypatch
    ):
        spec = _tiny_spec()
        total = plan_campaign(spec).total_points

        # -- run 1: the executor dies after its first batch ------------
        calls = {"batches": 0}

        def dying_run_jobs(jobs, **kwargs):
            if calls["batches"] >= 1:
                raise KeyboardInterrupt("simulated kill")
            calls["batches"] += 1
            results = run_jobs(jobs, **kwargs)
            dying_run_jobs.last_stats = run_jobs.last_stats
            return results

        dying_run_jobs.last_stats = None
        monkeypatch.setattr(
            campaign_executor, "run_jobs", dying_run_jobs
        )
        with pytest.raises(KeyboardInterrupt):
            run_campaign(spec, batch_size=5)
        monkeypatch.setattr(campaign_executor, "run_jobs", run_jobs)

        manifest = CampaignManifest.load(manifest_path(spec.name))
        assert manifest is not None
        assert len(manifest.completed) == 5
        assert manifest.status == "running"

        # -- run 2: resumes; the 5 completed points are not
        # resubmitted, let alone re-simulated -------------------------
        result = run_campaign(spec, batch_size=5)
        assert result.complete
        assert result.stats.previously_complete == 5
        assert result.stats.submitted == total - 5
        assert result.stats.simulated == total - 5
        assert result.stats.cache_hits == 0

        # -- run 3: the manifest has converged — nothing submitted,
        # 0 simulate calls, completion set byte-stable ----------------
        before = set(
            CampaignManifest.load(manifest_path(spec.name)).completed
        )
        result = run_campaign(spec, batch_size=5)
        assert result.complete
        assert result.stats.submitted == 0
        assert result.stats.simulated == 0
        after_manifest = CampaignManifest.load(manifest_path(spec.name))
        assert set(after_manifest.completed) == before
        assert after_manifest.status == "complete"

        # the experiment replays entirely from cache: 0 simulate calls
        from repro.experiments import fig11

        fig11.run(
            scale=TINY, flip_thresholds=(6_250,), schemes=("mithril",),
            attack_seeds=(31,),
        )
        assert run_jobs.last_stats.simulated == 0

    def test_code_version_change_resets_completion(self, monkeypatch):
        spec = _tiny_spec()
        run_campaign(spec, batch_size=100)
        path = manifest_path(spec.name)
        data = json.loads(path.read_text())
        data["code_version"] = "0000000000000000"
        path.write_text(json.dumps(data))
        plan = plan_campaign(spec)
        manifest = CampaignManifest.for_plan(path, plan)
        assert manifest.completed == []
        assert any(
            "completion reset" in note
            for note in manifest.data.get("notes", [])
        )

    def test_dry_run_pending_count_respects_code_version(
        self, capsys
    ):
        """A stale-code-version manifest must not make --dry-run
        promise completion the real run would not honour."""
        from repro.cli import main

        spec = _tiny_spec()
        total = plan_campaign(spec).total_points
        run_campaign(spec)
        path = manifest_path(spec.name)
        spec_file = path.parent / "spec.json"
        spec_file.write_text(json.dumps(spec.to_dict()))

        assert main([
            "campaign", "run", str(spec_file), "--dry-run",
        ]) == 0
        out = capsys.readouterr().out
        assert f"would submit 0 point(s) ({total} already" in out

        data = json.loads(path.read_text())
        data["code_version"] = "0000000000000000"
        path.write_text(json.dumps(data))
        assert main([
            "campaign", "run", str(spec_file), "--dry-run",
        ]) == 0
        out = capsys.readouterr().out
        assert f"would submit {total} point(s) (0 already" in out

    def test_noop_resume_does_not_grow_the_index(self):
        from repro.engine import ResultCache

        spec = _tiny_spec()
        run_campaign(spec)
        index_path = ResultCache().index_for_version().path
        size = index_path.stat().st_size
        run_campaign(spec)  # zero-submission resume
        assert index_path.stat().st_size == size

    def test_cli_verify_audits_exactly_once(self, capsys):
        """`campaign verify` signs off a completed campaign and flags
        a store entry that goes missing behind the manifest's back."""
        from repro.cli import main
        from repro.engine import ResultCache

        spec = _tiny_spec()
        run_campaign(spec)
        spec_file = manifest_path(spec.name).parent / "spec.json"
        spec_file.write_text(json.dumps(spec.to_dict()))

        assert main([
            "campaign", "verify", str(spec_file), "--strict",
        ]) == 0
        out = capsys.readouterr().out
        assert "verdict:     OK" in out

        victim = sorted(plan_campaign(spec).jobs.values(),
                        key=lambda job: job.job_hash())[0]
        ResultCache().path_for(victim).unlink()
        assert main(["campaign", "verify", str(spec_file)]) == 1
        out = capsys.readouterr().out
        assert "missing:     1" in out

    def test_cli_verify_exit_code_contract(self, capsys):
        """The documented 0/1/2 contract: clean, findings, unreadable
        — each with a machine-readable --json shape carrying the exit
        code so scripts never parse prose."""
        from repro.cli import main
        from repro.engine import ResultCache

        spec = _tiny_spec()
        run_campaign(spec)
        spec_file = manifest_path(spec.name).parent / "spec.json"
        spec_file.write_text(json.dumps(spec.to_dict()))

        # 0: clean (strict included), with the JSON payload agreeing
        assert main([
            "campaign", "verify", str(spec_file), "--strict", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["strict_ok"] is True
        assert payload["exit_code"] == 0
        assert payload["verified"] == payload["planned"]

        # 1: findings — a store entry vanishes behind the manifest
        victim = sorted(plan_campaign(spec).jobs.values(),
                        key=lambda job: job.job_hash())[0]
        ResultCache().path_for(victim).unlink()
        assert main([
            "campaign", "verify", str(spec_file), "--json",
        ]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["exit_code"] == 1
        assert payload["ok"] is False
        assert len(payload["missing"]) == 1

        # 2: unreadable state — the spec cannot be resolved at all
        assert main(["campaign", "verify", "no-such-campaign"]) == 2
        capsys.readouterr()
        assert main([
            "campaign", "verify", "no-such-campaign", "--json",
        ]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["exit_code"] == 2
        assert "error" in payload

    def test_cli_verify_strict_flags_quarantine_as_findings(
        self, capsys, monkeypatch
    ):
        """A campaign whose only blemish is a quarantined point is ok
        under the default audit (exit 0) but a finding under
        --strict (exit 1)."""
        from repro.cli import main
        from repro.faults import FAULT_PLAN_ENV

        spec = _tiny_spec()
        poison = sorted(plan_campaign(spec).jobs)[0]
        monkeypatch.setenv(FAULT_PLAN_ENV, json.dumps({
            "faults": [{"site": "worker.execute", "kind": "error",
                        "match": poison, "times": None}],
        }))
        run_campaign(spec, max_retries=0)
        monkeypatch.delenv(FAULT_PLAN_ENV)
        spec_file = manifest_path(spec.name).parent / "spec.json"
        spec_file.write_text(json.dumps(spec.to_dict()))

        assert main(["campaign", "verify", str(spec_file)]) == 0
        capsys.readouterr()
        assert main([
            "campaign", "verify", str(spec_file), "--strict", "--json",
        ]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["strict_ok"] is False
        assert payload["exit_code"] == 1
        assert poison in payload["quarantined"]

    def test_dry_run_never_simulates(self, monkeypatch):
        def boom(*_a, **_k):
            raise AssertionError("dry run must not execute jobs")

        monkeypatch.setattr(campaign_executor, "run_jobs", boom)
        from repro.cli import main

        assert main([
            "campaign", "run", "smoke", "--scale", str(TINY), "--dry-run",
        ]) == 0


class TestCampaignRunAndReport:
    @pytest.mark.slow
    def test_stress_panel_report_has_per_family_panels(self, capsys):
        """ISSUE acceptance, shrunk: per-family slowdown panels for
        both figure experiments of the stress-panel campaign."""
        from repro.cli import main

        assert main([
            "campaign", "run", "stress-panel", "--scale", "0.02",
            "--jobs", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "report:" in out

        spec = get_campaign("stress-panel")
        report = build_report(spec)
        assert report["status"] == "complete"
        families = (
            "capacity-pressure",
            "row-conflict-heavy",
            "multi-channel-imbalanced",
        )
        experiments_with_panels = 0
        for experiment in report["experiments"]:
            assert experiment["replay"]["simulated"] == 0
            if experiment["panels"]:
                experiments_with_panels += 1
                assert set(experiment["panels"]) == set(families)
                assert experiment["panel_slowdowns"]
        assert experiments_with_panels >= 2

        rendered = format_report(report)
        for family in families:
            assert f"panel: {family}" in rendered
        assert "slowdown" in rendered

    def test_smoke_campaign_end_to_end_cli(self, tmp_path, capsys):
        """plan → run → status → report, the CI smoke sequence."""
        from repro.cli import main

        scale = ["--scale", str(TINY)]
        assert main(["campaign", "list"]) == 0
        assert "stress-panel" in capsys.readouterr().out

        assert main(["campaign", "plan", "smoke", *scale]) == 0
        out = capsys.readouterr().out
        assert "deduplicated" in out

        assert main(["campaign", "status", "smoke"]) == 1  # never ran
        capsys.readouterr()

        assert main(["campaign", "run", "smoke", *scale]) == 0
        capsys.readouterr()

        assert main(["campaign", "status", "smoke", "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["status"] == "complete"
        assert status["completed_points"] == status["total_points"]
        assert all(
            e["completed"] == e["points"] for e in status["experiments"]
        )

        report_file = tmp_path / "report.md"
        assert main([
            "campaign", "report", "smoke", "--output", str(report_file),
        ]) == 0
        rendered = report_file.read_text()
        assert "# Campaign report: smoke" in rendered
        assert "panel: capacity-pressure" in rendered
        assert "panel: row-conflict-heavy" in rendered

        # rerunning after completion submits nothing
        assert main(["campaign", "run", "smoke", *scale]) == 0
        assert "0 simulated" in capsys.readouterr().out

    def test_custom_spec_file_runs(self, tmp_path):
        spec_file = tmp_path / "custom.json"
        spec_file.write_text(json.dumps(_tiny_spec().to_dict()))
        from repro.cli import main

        assert main([
            "campaign", "run", str(spec_file), "--batch-size", "6",
        ]) == 0
        manifest = CampaignManifest.load(manifest_path("resume-test"))
        assert manifest.status == "complete"

    def test_provenance_annotations_reach_the_cache_index(self):
        from repro.engine import ResultCache

        spec = _tiny_spec()
        run_campaign(spec)
        records = ResultCache().index().query(experiment="f11")
        assert len(records) == plan_campaign(spec).total_points


class TestExtraWorkloadsPanels:
    """The satellite: stress families as figure-driver extra panels."""

    def test_fig11_panel_rows(self):
        from repro.experiments import fig11

        rows = fig11.run(
            scale=TINY, flip_thresholds=(6_250,), schemes=("mithril",),
            attack_seeds=(31,),
            extra_workloads=("capacity-pressure", "row-conflict-heavy"),
        )
        panels = [row for row in rows if "panel" in row]
        assert {row["panel"] for row in panels} == {
            "capacity-pressure", "row-conflict-heavy"
        }
        for row in panels:
            assert 0 < row["rel_perf_pct"] <= 100.5
            assert "energy_overhead_pct" in row

    def test_fig9_panel_rows(self):
        from repro.experiments import fig9

        rows = fig9.run(
            scale=TINY, sweep=((6_250, 64),),
            extra_workloads=("multi-channel-imbalanced",),
        )
        panels = [row for row in rows if "panel" in row]
        assert len(panels) == 1
        assert panels[0]["panel"] == "multi-channel-imbalanced"
        assert "mithril_rel_perf_pct" in panels[0]
        assert "mithril_plus_rel_perf_pct" in panels[0]

    def test_panels_default_off_and_rows_unchanged(self):
        from repro.experiments import fig11

        rows = fig11.run(
            scale=TINY, flip_thresholds=(6_250,), schemes=("mithril",),
            attack_seeds=(31,),
        )
        assert all("panel" not in row for row in rows)

    def test_driver_without_support_is_a_clean_error(self, capsys):
        from repro.cli import main

        assert main([
            "experiment", "table4",
            "--extra-workloads", "capacity-pressure",
        ]) == 1
        assert "does not support" in capsys.readouterr().out
