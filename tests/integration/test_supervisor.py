"""Integration: the supervised worker pool and the retrying executor.

Every failure mode the supervisor exists for is provoked here through
the deterministic fault harness (docs/FAULTS.md): ordinary exceptions
retry with backoff, killed workers are detected and replaced, hung
workers are killed at their lease deadline, and poison jobs end up as
structured :class:`JobFailure` records — never as an aborted batch or
an opaque pool error.
"""

import json

import pytest

from repro.engine import (
    JobExecutionError,
    SimJob,
    normal_workload_specs,
    result_to_dict,
    run_jobs,
)
from repro.engine.supervisor import RetryPolicy
from repro.faults import FAULT_PLAN_ENV

TINY = 0.1


def _tiny_jobs(count=3):
    specs = normal_workload_specs(scale=TINY, num_cores=2)
    jobs = [
        SimJob(workload=specs["fft"]),
        SimJob(workload=specs["radix"]),
        SimJob(workload=specs["fft"], scheme="mithril", flip_th=6_250),
    ]
    return jobs[:count]


def _fast_policy(max_retries=2):
    return RetryPolicy(max_retries=max_retries, backoff_base_s=0.0,
                       backoff_cap_s=0.0, jitter=0.0)


def _activate(monkeypatch, tmp_path, rules):
    monkeypatch.setenv(FAULT_PLAN_ENV, json.dumps({
        "state_dir": str(tmp_path / "fault-state"),
        "faults": rules,
    }))


def _dumps(results):
    return json.dumps(
        [result_to_dict(r) for r in results], sort_keys=True
    )


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(backoff_base_s=0.1, backoff_cap_s=0.3,
                             jitter=0.0)
        delays = [policy.delay("ab12cd", n) for n in (1, 2, 3, 4)]
        assert delays == [
            pytest.approx(0.1), pytest.approx(0.2),
            pytest.approx(0.3), pytest.approx(0.3),
        ]

    def test_jitter_is_deterministic_per_hash(self):
        policy = RetryPolicy(backoff_base_s=0.1, jitter=0.5)
        a1 = policy.delay("aaaa1111", 1)
        a2 = policy.delay("aaaa1111", 1)
        b = policy.delay("bbbb2222", 1)
        assert a1 == a2
        assert a1 != b


class TestRetries:
    def test_transient_error_retries_to_success(
        self, monkeypatch, tmp_path
    ):
        job = _tiny_jobs(1)[0]
        _activate(monkeypatch, tmp_path, [
            {"site": "worker.execute", "kind": "error", "times": 1},
        ])
        results = run_jobs([job], use_cache=False,
                           retry_policy=_fast_policy())
        stats = run_jobs.last_stats
        assert results[0] is not None
        assert stats.retried == 1
        assert stats.failed == 0
        assert stats.simulated == 1

    def test_worker_crash_retries_to_success(
        self, monkeypatch, tmp_path
    ):
        """A killed worker (os._exit inside the child) is detected,
        the worker replaced, and the job retried — the pool survives
        what broke ProcessPoolExecutor."""
        job = _tiny_jobs(1)[0]
        _activate(monkeypatch, tmp_path, [
            {"site": "worker.execute", "kind": "crash", "times": 1},
        ])
        results = run_jobs([job], n_jobs=2, use_cache=False,
                           retry_policy=_fast_policy())
        assert results[0] is not None
        assert run_jobs.last_stats.retried == 1

    def test_hung_worker_is_killed_at_the_lease_deadline(
        self, monkeypatch, tmp_path
    ):
        job = _tiny_jobs(1)[0]
        _activate(monkeypatch, tmp_path, [
            {"site": "worker.execute", "kind": "hang",
             "seconds": 600, "times": 1},
        ])
        results = run_jobs([job], use_cache=False, job_timeout=1.5,
                           retry_policy=_fast_policy())
        assert results[0] is not None
        stats = run_jobs.last_stats
        assert stats.retried == 1
        assert any(
            "timeout" not in (f.reason or "") for f in stats.failures
        ) or not stats.failures


class TestQuarantine:
    def test_poison_job_raises_structured_error(
        self, monkeypatch, tmp_path
    ):
        jobs = _tiny_jobs(2)
        poison = jobs[0].job_hash()
        _activate(monkeypatch, tmp_path, [
            {"site": "worker.execute", "kind": "crash",
             "match": poison, "times": None},
        ])
        with pytest.raises(JobExecutionError) as excinfo:
            run_jobs(jobs, n_jobs=2, use_cache=False,
                     retry_policy=_fast_policy(max_retries=1))
        failures = excinfo.value.failures
        assert [f.job_hash for f in failures] == [poison]
        failure = failures[0]
        assert failure.reason == "worker-crash"
        assert failure.attempts == 2
        assert failure.scheme == jobs[0].scheme
        assert failure.workload == jobs[0].workload.kind
        assert len(failure.events) == 2
        # structured stats survive the raise
        assert run_jobs.last_stats.failed == 1

    def test_on_failure_skip_returns_none_slots(
        self, monkeypatch, tmp_path
    ):
        jobs = _tiny_jobs(2)
        poison = jobs[0].job_hash()
        _activate(monkeypatch, tmp_path, [
            {"site": "worker.execute", "kind": "error",
             "match": poison, "times": None},
        ])
        results = run_jobs(jobs, use_cache=False, on_failure="skip",
                           retry_policy=_fast_policy(max_retries=1))
        assert results[0] is None
        assert results[1] is not None
        assert run_jobs.last_stats.failed == 1

    def test_healthy_jobs_complete_and_cache_despite_poison(
        self, monkeypatch, tmp_path
    ):
        """The batch's survivors are cached even when a sibling job
        is quarantined — a retry run only pays for the poison job."""
        jobs = _tiny_jobs(3)
        poison = jobs[0].job_hash()
        cache_dir = tmp_path / "cache"
        _activate(monkeypatch, tmp_path, [
            {"site": "worker.execute", "kind": "error",
             "match": poison, "times": None},
        ])
        run_jobs(jobs, n_jobs=2, cache_dir=cache_dir, on_failure="skip",
                 retry_policy=_fast_policy(max_retries=0))
        monkeypatch.delenv(FAULT_PLAN_ENV)
        results = run_jobs(jobs, cache_dir=cache_dir)
        stats = run_jobs.last_stats
        assert all(r is not None for r in results)
        assert stats.cache_hits == 2
        assert stats.simulated == 1

    def test_invalid_on_failure_rejected(self):
        with pytest.raises(ValueError):
            run_jobs([], on_failure="explode")


class TestDeterminism:
    def test_supervised_results_byte_identical_to_serial(self):
        jobs = _tiny_jobs(3)
        serial = run_jobs(jobs, n_jobs=1, use_cache=False)
        supervised = run_jobs(jobs, n_jobs=3, use_cache=False)
        assert _dumps(serial) == _dumps(supervised)

    def test_results_identical_through_crash_retries(
        self, monkeypatch, tmp_path
    ):
        """Faulted-then-retried execution must produce byte-identical
        results to an undisturbed run: retries re-enter the same
        deterministic simulate path."""
        jobs = _tiny_jobs(3)
        clean = run_jobs(jobs, use_cache=False)
        _activate(monkeypatch, tmp_path, [
            {"site": "worker.execute", "kind": "crash", "times": 2},
        ])
        faulted = run_jobs(jobs, n_jobs=2, use_cache=False,
                           retry_policy=_fast_policy())
        assert run_jobs.last_stats.retried == 2
        assert _dumps(clean) == _dumps(faulted)
