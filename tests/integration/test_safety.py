"""Integration: the deterministic protection guarantee under attack.

Every deterministic scheme must keep every victim's disturbance below
FlipTH against every adversarial stream; the unprotected baseline must
flip.  These replays run at full ACT rate with real refresh cadence.
"""

import pytest

pytestmark = pytest.mark.slow

from repro.core.config import min_entries_for
from repro.core.mithril import MithrilScheme
from repro.mitigations.blockhammer import BlockHammerScheme
from repro.mitigations.graphene import GrapheneScheme
from repro.mitigations.parfm import ParfmScheme
from repro.mitigations.rfm_graphene import RfmGrapheneScheme
from repro.mitigations.twice import TwiceScheme
from repro.protection import NoProtection
from repro.verify.adversary import (
    double_sided_stream,
    feinting_stream,
    many_sided_stream,
    random_stream,
    round_robin_stream,
)
from repro.verify.safety import run_safety_trace

FLIP_TH = 3_125
RFM_TH = 64
ACTS = 150_000


def _mithril(adaptive_th: int = 0, plus: bool = False) -> MithrilScheme:
    n = min_entries_for(FLIP_TH, RFM_TH, adaptive_th)
    assert n is not None
    return MithrilScheme(
        n_entries=n, rfm_th=RFM_TH, adaptive_th=adaptive_th, plus=plus
    )


class TestUnprotectedBaseline:
    def test_double_sided_flips(self):
        report = run_safety_trace(
            NoProtection(), double_sided_stream(1000, ACTS), FLIP_TH
        )
        assert not report.safe
        assert report.max_disturbance >= FLIP_TH

    def test_many_sided_flips(self):
        report = run_safety_trace(
            NoProtection(), many_sided_stream(33, ACTS * 2), FLIP_TH
        )
        assert not report.safe


class TestMithrilSafety:
    @pytest.mark.parametrize(
        "stream_name,stream",
        [
            ("double-sided", double_sided_stream(1000, ACTS)),
            ("many-sided-33", many_sided_stream(33, ACTS)),
            ("round-robin-2n", None),  # built per-config below
            ("feinting", feinting_stream(100, 60, 25)),
            ("random", random_stream(5000, ACTS)),
        ],
    )
    def test_no_flips_under_any_attack(self, stream_name, stream):
        scheme = _mithril()
        if stream is None:
            stream = round_robin_stream(2 * scheme.table.n_entries, ACTS)
        report = run_safety_trace(
            scheme, stream, FLIP_TH, rfm_th=RFM_TH
        )
        assert report.safe, f"{stream_name}: flips={len(report.flips)}"
        assert report.max_disturbance < FLIP_TH

    def test_adaptive_refresh_remains_safe(self):
        """AdTH=200 with the re-sized table still protects (Theorem 2)."""
        scheme = _mithril(adaptive_th=200)
        report = run_safety_trace(
            scheme, double_sided_stream(1000, ACTS), FLIP_TH, rfm_th=RFM_TH
        )
        assert report.safe
        assert report.max_disturbance < FLIP_TH

    def test_mithril_plus_remains_safe(self):
        scheme = _mithril(adaptive_th=200, plus=True)
        report = run_safety_trace(
            scheme, many_sided_stream(17, ACTS), FLIP_TH, rfm_th=RFM_TH
        )
        assert report.safe

    def test_benign_stream_skips_most_refreshes(self):
        """Adaptive refresh: near-uniform traffic does almost no work."""
        scheme = _mithril(adaptive_th=200)
        report = run_safety_trace(
            scheme, random_stream(50_000, 100_000), FLIP_TH, rfm_th=RFM_TH
        )
        assert report.safe
        assert scheme.stats.rfms_skipped > scheme.stats.rfms_received * 0.9

    def test_headroom_reported(self):
        scheme = _mithril()
        report = run_safety_trace(
            scheme, double_sided_stream(1000, 50_000), FLIP_TH, rfm_th=RFM_TH
        )
        assert 0.0 < report.headroom <= 1.0


class TestBaselineSchemeSafety:
    def test_graphene_protects(self):
        scheme = GrapheneScheme(flip_th=FLIP_TH)
        report = run_safety_trace(
            scheme, double_sided_stream(1000, ACTS), FLIP_TH
        )
        assert report.safe

    def test_twice_protects(self):
        scheme = TwiceScheme(flip_th=FLIP_TH)
        report = run_safety_trace(
            scheme, double_sided_stream(1000, ACTS), FLIP_TH
        )
        assert report.safe

    def test_blockhammer_protects(self):
        """Throttling, not refreshing: ACT rate capping keeps counts
        below FlipTH inside the replay's tREFW-scale window."""
        scheme = BlockHammerScheme(flip_th=FLIP_TH)
        report = run_safety_trace(
            scheme, double_sided_stream(1000, ACTS), FLIP_TH
        )
        # throttling shows up as released-in-the-future ACT times, which
        # the raw replay cannot model; assert the blacklist caught it
        assert scheme.is_blacklisted(999)
        assert scheme.is_blacklisted(1001)

    def test_parfm_usually_protects(self):
        scheme = ParfmScheme(seed=5)
        report = run_safety_trace(
            scheme, double_sided_stream(1000, ACTS), FLIP_TH,
            rfm_th=16,
        )
        assert report.safe  # probability of failure is astronomically low


class TestRfmGrapheneWeakness:
    def test_feinting_overwhelms_rfm_graphene(self):
        """Figure 2's point: concentration defeats the threshold-buffer
        approach at a FlipTH that Mithril handles with the same table."""
        threshold = 400
        scheme = RfmGrapheneScheme(threshold=threshold, n_entries=2048)
        # Raise ~150 rows to the threshold nearly simultaneously, then
        # keep hammering: the queue drains one row per RFM while every
        # other buffered row keeps taking hits.
        stream = feinting_stream(150, threshold // 4, 30, spacing=2)
        report = run_safety_trace(
            scheme, stream, flip_th=FLIP_TH, rfm_th=RFM_TH,
            max_acts=600_000,
        )
        mithril = _mithril()
        mithril_report = run_safety_trace(
            mithril,
            feinting_stream(150, threshold // 4, 30, spacing=2),
            flip_th=FLIP_TH,
            rfm_th=RFM_TH,
            max_acts=600_000,
        )
        assert mithril_report.safe
        assert report.max_disturbance > mithril_report.max_disturbance
