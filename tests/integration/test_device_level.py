"""Integration: chip-level co-drive of the Figure-4 / JESD79-5 stack.

Drives :class:`DramChip` with :class:`Ddr5RfmPolicy` per bank — the
full command-level cooperation: RAA counting with RAAMMT and REF
credit on the MC side, Mithril + mode-register flag on the DRAM side.
"""

import pytest

from repro.core.config import paper_default_config
from repro.core.mithril import MithrilScheme
from repro.dram.device import MR_RFM_FLAG, DramChip, DramCommand
from repro.mc.refresh_management import Ddr5RaaState, Ddr5RfmPolicy
from repro.types import CommandKind

FLIP_TH = 6_250


def _stack(
    plus: bool = True,
    raammt_multiplier: int = 3,
    counter_bits: int = None,
):
    config = paper_default_config(FLIP_TH, adaptive_th=200)
    chip = DramChip(
        scheme_factory=lambda: MithrilScheme(
            n_entries=config.n_entries,
            rfm_th=config.rfm_th,
            adaptive_th=config.adaptive_th,
            plus=plus,
            counter_bits=counter_bits,
        ),
        flip_th=FLIP_TH,
    )
    policies = [
        Ddr5RfmPolicy(
            Ddr5RaaState(
                raaimt=config.rfm_th, raammt_multiplier=raammt_multiplier
            )
        )
        for _ in range(chip.num_banks)
    ]
    return config, chip, policies


def _drive(chip, policies, bank, row, cycle, plus=True):
    """One MC-side ACT with the full RFM decision path."""
    chip.execute(DramCommand(CommandKind.ACT, bank=bank, row=row,
                             cycle=cycle))
    if policies[bank].on_activate():
        if not plus or chip.mode_register_read(MR_RFM_FLAG):
            chip.execute(DramCommand(CommandKind.RFM, bank=bank,
                                     cycle=cycle))
            return "rfm"
        return "elided"
    return "act"


class TestDeviceLevelCoDrive:
    def test_hammered_bank_protected(self):
        _config, chip, policies = _stack()
        for i in range(60_000):
            row = 999 if i % 2 == 0 else 1001
            _drive(chip, policies, bank=0, row=row, cycle=i)
        assert chip.flip_count == 0
        assert chip.max_disturbance < FLIP_TH

    def test_benign_bank_elides_rfms(self):
        _config, chip, policies = _stack()
        outcomes = {"act": 0, "rfm": 0, "elided": 0}
        for i in range(20_000):
            outcome = _drive(
                chip, policies, bank=1, row=(i // 8) % 4_096, cycle=i
            )
            outcomes[outcome] += 1
        assert outcomes["elided"] > 0
        assert outcomes["elided"] > outcomes["rfm"]

    def test_attacked_bank_spends_its_rfms(self):
        _config, chip, policies = _stack()
        outcomes = {"act": 0, "rfm": 0, "elided": 0}
        for i in range(20_000):
            row = 999 if i % 2 == 0 else 1001
            outcomes[_drive(chip, policies, 0, row, i)] += 1
        assert outcomes["rfm"] > 0
        assert chip.preventive_refreshes > 0

    def test_raa_never_exceeds_raammt(self):
        _config, chip, policies = _stack(raammt_multiplier=2)
        for i in range(10_000):
            _drive(chip, policies, bank=0, row=i % 7, cycle=i)
            assert policies[0].raa.value <= policies[0].raa.raammt

    def test_plain_mithril_issues_every_rfm(self):
        config, chip, policies = _stack(plus=False)
        rfms = 0
        for i in range(20_000):
            row = 999 if i % 2 == 0 else 1001
            if _drive(chip, policies, 0, row, i, plus=False) == "rfm":
                rfms += 1
        assert rfms == 20_000 // config.rfm_th

    def test_ref_credit_stretches_rfm_cadence(self):
        """Interleaving REF commands pays RAA down: fewer RFMs.

        The stretched cadence also grows the tracker spread past the
        default wrapping-counter window (see the warning in
        ``repro.mc.refresh_management``), so the counter field must be
        sized for the credit-stretched interval.
        """
        config, chip, policies = _stack(plus=False, counter_bits=32)
        rfms_with_credit = 0
        for i in range(10_000):
            row = 999 if i % 2 == 0 else 1001
            if _drive(chip, policies, 0, row, i, plus=False) == "rfm":
                rfms_with_credit += 1
            if i % 32 == 31:
                policies[0].on_refresh()
                chip.execute(
                    DramCommand(CommandKind.REF, bank=0, cycle=i)
                )
        assert rfms_with_credit < 10_000 // config.rfm_th

    def test_default_counter_overflows_under_ref_credit(self):
        """The documented hazard: default sizing + REF credit raises."""
        _config, chip, policies = _stack(plus=False)
        with pytest.raises(OverflowError):
            for i in range(10_000):
                row = 999 if i % 2 == 0 else 1001
                _drive(chip, policies, 0, row, i, plus=False)
                if i % 32 == 31:
                    policies[0].on_refresh()
