"""Integration: empirical validation of Theorems 1 and 2.

Replays adversarial streams and checks the *measured* estimated-count
growth against the analytical bound M — the exact quantity the paper's
proof bounds.
"""

import pytest

pytestmark = pytest.mark.slow

from repro.core.config import min_entries_for
from repro.core.mithril import MithrilScheme
from repro.verify.adversary import (
    double_sided_stream,
    feinting_stream,
    many_sided_stream,
    round_robin_stream,
)
from repro.verify.theorem import measure_estimate_growth

FLIP_TH = 3_125
RFM_TH = 64
ACTS = 100_000


def _scheme(adaptive_th: int = 0) -> MithrilScheme:
    n = min_entries_for(FLIP_TH, RFM_TH, adaptive_th)
    return MithrilScheme(
        n_entries=n, rfm_th=RFM_TH, adaptive_th=adaptive_th,
        counter_bits=62,
    )


class TestTheorem1Empirically:
    @pytest.mark.parametrize(
        "name,stream",
        [
            ("double-sided", double_sided_stream(1000, ACTS)),
            ("many-sided", many_sided_stream(33, ACTS)),
            ("feinting", feinting_stream(120, 60, 14)),
        ],
    )
    def test_growth_within_bound(self, name, stream):
        scheme = _scheme()
        report = measure_estimate_growth(scheme, stream, max_acts=ACTS)
        assert report.within_bound, (
            f"{name}: growth {report.max_growth} > bound "
            f"{report.theorem_bound}"
        )

    def test_round_robin_maximizes_growth(self):
        """The concentration pattern (round-robin over > Nentry rows)
        approaches the bound far more than a single-target attack."""
        focused = measure_estimate_growth(
            _scheme(), double_sided_stream(1000, ACTS), max_acts=ACTS
        )
        n = _scheme().table.n_entries
        thrash = measure_estimate_growth(
            _scheme(), round_robin_stream(2 * n, ACTS), max_acts=ACTS
        )
        assert thrash.tightness > focused.tightness

    def test_growth_bound_positive_and_sane(self):
        report = measure_estimate_growth(
            _scheme(), many_sided_stream(17, ACTS), max_acts=ACTS
        )
        assert report.theorem_bound > 0
        assert report.max_growth >= 0
        assert report.acts_replayed == ACTS


class TestTheorem2Empirically:
    def test_adaptive_growth_within_looser_bound(self):
        scheme = _scheme(adaptive_th=200)
        report = measure_estimate_growth(
            scheme, many_sided_stream(33, ACTS), max_acts=ACTS
        )
        assert report.within_bound

    def test_adaptive_bound_looser_than_plain(self):
        plain = measure_estimate_growth(
            _scheme(), many_sided_stream(9, 20_000), max_acts=20_000
        )
        adaptive = measure_estimate_growth(
            _scheme(adaptive_th=200), many_sided_stream(9, 20_000),
            max_acts=20_000,
        )
        assert adaptive.theorem_bound >= plain.theorem_bound
