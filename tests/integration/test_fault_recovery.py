"""Integration: end-to-end crash/torn-write recovery (ISSUE 7).

These tests kill a real ``repro campaign run`` subprocess at the
worst possible moments — between the temp write and the rename of a
manifest checkpoint, and mid-store-entry write — then resume and
assert the two acceptance invariants:

* **zero re-simulated completed points** — everything simulated
  before the kill is served from the store on resume (the manifest
  and cache agree);
* **zero corrupt survivors** — every torn/corrupt file ends up in a
  ``quarantine/`` directory, never satisfying a read, and
  ``campaign verify --strict`` signs off the healed store.

The kills are injected through the deterministic fault harness
(``REPRO_FAULT_PLAN``, docs/FAULTS.md) with ``hard: true``, which is
``os._exit(CRASH_EXIT_CODE)`` — indistinguishable from ``kill -9``
at the moment of the write.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.campaigns import (
    CampaignSpec,
    ExperimentSpec,
    plan_campaign,
    verify_campaign,
)
from repro.engine.cache import ResultCache
from repro.faults import CRASH_EXIT_CODE

TINY = 0.05

pytestmark = pytest.mark.slow


def _tiny_spec():
    """One fig11 sweep: 12 distinct points at trivial scale."""
    return CampaignSpec(
        name="chaos-test",
        experiments=[
            ExperimentSpec(
                name="f11",
                kind="fig11",
                params=dict(
                    scale=TINY, flip_thresholds=[6_250],
                    schemes=["mithril"], attack_seeds=[31],
                ),
            )
        ],
    )


@pytest.fixture
def harness(tmp_path):
    """Spec file + isolated env for driving the CLI as a subprocess."""
    spec = _tiny_spec()
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(spec.to_dict()))
    env = dict(os.environ)
    src = Path(__file__).resolve().parents[2] / "src"
    env["PYTHONPATH"] = str(src)
    env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
    env["REPRO_CAMPAIGN_DIR"] = str(tmp_path / "campaigns")
    env.pop("REPRO_FAULT_PLAN", None)
    return {
        "spec": spec,
        "spec_path": spec_path,
        "env": env,
        "tmp_path": tmp_path,
    }


def _run(harness, *extra, faults=None, check=True):
    env = dict(harness["env"])
    if faults is not None:
        plan_path = harness["tmp_path"] / "fault-plan.json"
        plan_path.write_text(json.dumps({
            "state_dir": str(harness["tmp_path"] / "fault-state"),
            "faults": faults,
        }))
        env["REPRO_FAULT_PLAN"] = str(plan_path)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "campaign", "run",
         str(harness["spec_path"]), "--batch-size", "4", "--no-report",
         *extra],
        env=env, capture_output=True, text=True, timeout=600,
    )
    if check and proc.returncode != 0:
        raise AssertionError(
            f"campaign run exited {proc.returncode}\n"
            f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
        )
    return proc


def _last_run_stats(harness):
    from repro.campaigns import CampaignManifest, manifest_path

    manifest = CampaignManifest.load(
        manifest_path("chaos-test", harness["env"]["REPRO_CAMPAIGN_DIR"])
    )
    return manifest.data["runs"][-1]


def _verify(harness):
    return verify_campaign(
        harness["spec"],
        directory=harness["env"]["REPRO_CAMPAIGN_DIR"],
        cache_dir=harness["env"]["REPRO_CACHE_DIR"],
    )


class TestKillMidManifestWrite:
    def test_resume_resimulates_nothing_already_stored(self, harness):
        total = plan_campaign(_tiny_spec()).total_points
        cache = ResultCache(harness["env"]["REPRO_CACHE_DIR"])

        # -- kill -9 in the write window of the 2nd manifest
        # checkpoint: batch 1 and 2 are in the store, but only batch 1
        # made it into the manifest.
        proc = _run(harness, check=False, faults=[
            {"site": "manifest.write", "kind": "crash",
             "hard": True, "times": 1, "match": "chaos-test"},
        ])
        assert proc.returncode == CRASH_EXIT_CODE, proc.stderr
        stored_before_resume = cache.entry_count()
        assert 0 < stored_before_resume < total

        # -- clean resume: completes, and every point that reached the
        # store before the kill is a cache hit, not a simulation.
        proc = _run(harness)
        stats = _last_run_stats(harness)
        assert stats["simulated"] == total - stored_before_resume
        assert stats["cache_hits"] >= 0
        assert stats["simulated"] + stats["previously_complete"] + \
            stats["cache_hits"] == total

        # -- exactly-once: store audit is clean, and a further rerun
        # is a complete noop.
        audit = _verify(harness)
        assert audit["ok"], audit
        assert audit["verified"] == total
        assert audit["duplicates"] == []
        _run(harness)
        stats = _last_run_stats(harness)
        assert stats["submitted"] == 0
        assert stats["simulated"] == 0

    def test_torn_manifest_recovers_from_prev_rotation(self, harness):
        """A torn manifest primary costs at most one batch of
        completion records: load quarantines the torn file, falls back
        to ``manifest.json.prev`` (rotated on every checkpoint), and
        the resumed campaign converges with zero re-simulation."""
        from repro.campaigns import CampaignManifest, run_campaign

        spec = _tiny_spec()
        total = plan_campaign(spec).total_points
        campaign_root = (
            Path(harness["env"]["REPRO_CAMPAIGN_DIR"]) / "chaos-test"
        )
        run_campaign(
            spec,
            directory=harness["env"]["REPRO_CAMPAIGN_DIR"],
            cache_dir=harness["env"]["REPRO_CACHE_DIR"],
            batch_size=4,
        )
        manifest_file = campaign_root / "manifest.json"
        prev_file = campaign_root / "manifest.json.prev"
        assert prev_file.exists()  # rotated during the checkpoints

        # tear the primary the way a non-atomic writer would
        good = manifest_file.read_text()
        manifest_file.write_text(good[: len(good) // 2])

        manifest = CampaignManifest.load(manifest_file)
        assert manifest is not None  # .prev adopted
        assert any(
            "manifest.json.prev" in note
            for note in manifest.data.get("notes") or []
        )
        quarantine = campaign_root / "quarantine"
        assert any(quarantine.glob("manifest.json*"))

        # resume: at most the last batch is re-checked, all of it
        # from the store — zero re-simulated points.
        result = run_campaign(
            spec,
            directory=harness["env"]["REPRO_CAMPAIGN_DIR"],
            cache_dir=harness["env"]["REPRO_CACHE_DIR"],
            batch_size=4,
        )
        assert result.complete
        assert result.stats.simulated == 0
        audit = _verify(harness)
        assert audit["ok"], audit
        assert audit["verified"] == total

    def test_unrecoverable_manifest_restarts_but_stays_warm(
        self, harness
    ):
        """Both manifest copies gone: the campaign restarts from
        scratch, but the store still turns every completed point into
        a cache hit — re-planned work is never re-simulated."""
        from repro.campaigns import run_campaign

        spec = _tiny_spec()
        campaign_root = (
            Path(harness["env"]["REPRO_CAMPAIGN_DIR"]) / "chaos-test"
        )
        run_campaign(
            spec,
            directory=harness["env"]["REPRO_CAMPAIGN_DIR"],
            cache_dir=harness["env"]["REPRO_CACHE_DIR"],
            batch_size=4,
        )
        (campaign_root / "manifest.json").write_text("garbage{")
        (campaign_root / "manifest.json.prev").unlink()
        result = run_campaign(
            spec,
            directory=harness["env"]["REPRO_CAMPAIGN_DIR"],
            cache_dir=harness["env"]["REPRO_CACHE_DIR"],
            batch_size=4,
        )
        assert result.complete
        assert result.stats.simulated == 0
        assert result.stats.cache_hits == result.stats.submitted


class TestQuarantineLifecycle:
    def test_poison_point_quarantines_skips_then_heals(
        self, harness, monkeypatch
    ):
        """A poison job is quarantined with diagnostics instead of
        aborting; resumes skip it until --retry-quarantined, after
        which a clean environment heals the campaign completely."""
        from repro.campaigns import run_campaign
        from repro.faults import FAULT_PLAN_ENV

        spec = _tiny_spec()
        plan = plan_campaign(spec)
        poison = sorted(plan.jobs)[0]
        kwargs = dict(
            directory=harness["env"]["REPRO_CAMPAIGN_DIR"],
            cache_dir=harness["env"]["REPRO_CACHE_DIR"],
            batch_size=4,
        )
        monkeypatch.setenv(FAULT_PLAN_ENV, json.dumps({
            "faults": [{"site": "worker.execute", "kind": "error",
                        "match": poison, "times": None}],
        }))
        result = run_campaign(spec, max_retries=1, **kwargs)
        assert not result.complete
        assert set(result.quarantined) == {poison}
        record = result.quarantined[poison]
        assert record["reason"] == "exception"
        assert record["attempts"] == 2
        assert "InjectedError" in record["message"]

        # resume without --retry-quarantined: the poison point stays
        # parked, nothing resubmits
        result = run_campaign(spec, **kwargs)
        assert result.stats.submitted == 0
        assert set(result.quarantined) == {poison}

        # heal: clear the fault, retry the quarantine
        monkeypatch.delenv(FAULT_PLAN_ENV)
        result = run_campaign(spec, retry_quarantined=True, **kwargs)
        assert result.complete
        assert result.quarantined == {}
        assert result.stats.simulated == 1
        audit = _verify(harness)
        assert audit["ok"] and not audit["quarantined"]


class TestGracefulDrain:
    def test_sigterm_drains_checkpoint_and_resumes(self, harness):
        """SIGTERM mid-campaign finishes the in-flight batch,
        checkpoints, and exits resumable (exit code 3); the resume
        re-simulates nothing the drained run completed."""
        import signal
        import time

        env = dict(harness["env"])
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "campaign", "run",
             str(harness["spec_path"]), "--batch-size", "2",
             "--no-report"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True,
        )
        manifest_file = (
            Path(env["REPRO_CAMPAIGN_DIR"]) / "chaos-test"
            / "manifest.json"
        )
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if manifest_file.exists():
                break
            if proc.poll() is not None:
                break
            time.sleep(0.05)
        assert proc.poll() is None, proc.communicate()
        proc.send_signal(signal.SIGTERM)
        stdout, stderr = proc.communicate(timeout=120)
        assert proc.returncode == 3, f"{stdout}\n{stderr}"
        assert "drained" in stdout

        cache = ResultCache(env["REPRO_CACHE_DIR"])
        stored = cache.entry_count()
        assert stored > 0

        _run(harness)
        stats = _last_run_stats(harness)
        total = plan_campaign(_tiny_spec()).total_points
        assert stats["simulated"] == total - stored
        audit = _verify(harness)
        assert audit["ok"], audit


class TestKillMidStoreWrite:
    def test_kill_mid_entry_write_leaves_no_torn_entry(self, harness):
        total = plan_campaign(_tiny_spec()).total_points
        cache = ResultCache(harness["env"]["REPRO_CACHE_DIR"])

        proc = _run(harness, check=False, faults=[
            {"site": "cache.entry.write", "kind": "crash",
             "hard": True, "times": 1},
        ])
        assert proc.returncode == CRASH_EXIT_CODE
        # the atomic protocol held: whatever is on disk parses clean
        plan = plan_campaign(_tiny_spec())
        for job in plan.jobs.values():
            assert cache.verify(job) in ("ok", "missing")

        _run(harness)
        audit = _verify(harness)
        assert audit["ok"], audit
        assert audit["verified"] == total
        assert audit["corrupt"] == []
        # exactly-once across both runs: no duplicates, noop rerun
        _run(harness)
        assert _last_run_stats(harness)["simulated"] == 0

    def test_torn_store_entry_is_quarantined_and_resimulated(
        self, harness
    ):
        """A torn entry write (simulating a non-atomic writer or a
        filesystem eating a write) is caught by the same-run store
        audit: the file moves to quarantine/, the point re-simulates,
        and no corrupt file survives anywhere in the store."""
        total = plan_campaign(_tiny_spec()).total_points
        proc = _run(harness, faults=[
            {"site": "cache.entry.write", "kind": "torn", "times": 1},
        ])
        assert "store audit" in proc.stdout
        stats = _last_run_stats(harness)
        assert stats["audited_bad"] == 1
        # exactly once in the store, torn evidence in quarantine
        audit = _verify(harness)
        assert audit["ok"], audit
        assert audit["verified"] == total
        assert len(audit["store_quarantine_log"]) == 1
        cache_root = Path(harness["env"]["REPRO_CACHE_DIR"])
        for entry in cache_root.rglob("*.json"):
            if "quarantine" in entry.parts:
                continue
            json.loads(entry.read_text())  # no torn survivors
        _run(harness)
        assert _last_run_stats(harness)["simulated"] == 0
