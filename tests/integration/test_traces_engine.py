"""Integration: TraceSets and stress families through the engine.

Pins the ISSUE's acceptance criteria: a ``trace:<path>`` job and a
generated ``capacity-pressure`` job both run end-to-end through
``run_jobs()`` with caching (warm cache => zero simulate calls), and
the shipped example TraceSet stays loadable, digest-stable and
characterizable.
"""

import json
from pathlib import Path

import pytest

from repro.engine import (
    SimJob,
    WorkloadSpec,
    build_workload,
    run_jobs,
    traceset_spec,
)
from repro.traces import (
    TraceSet,
    capacity_pressure,
    characterize_traceset,
    characterize_workload,
    ingest_files,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
EXAMPLE_SET = REPO_ROOT / "examples" / "traces" / "example-set"


def _tiny_traceset(tmp_path, compress=False) -> Path:
    directory = tmp_path / "set"
    TraceSet(
        name="tiny",
        traces=capacity_pressure(num_cores=2, num_requests=80,
                                 num_banks=8, seed=5),
        provenance={"kind": "generated", "generator": "test"},
    ).save(directory, format="binary", compress=compress)
    return directory


class TestTraceSetRoundTrip:
    def test_save_load_preserves_traces_and_provenance(self, tmp_path):
        directory = _tiny_traceset(tmp_path, compress=True)
        loaded = TraceSet.load(directory)
        assert loaded.name == "tiny"
        assert loaded.provenance["generator"] == "test"
        assert len(loaded.traces) == 2
        rebuilt = capacity_pressure(num_cores=2, num_requests=80,
                                    num_banks=8, seed=5)
        assert [t.entries for t in loaded.traces] == [
            t.entries for t in rebuilt
        ]

    def test_digest_is_format_independent(self, tmp_path):
        traces = capacity_pressure(num_cores=1, num_requests=40, seed=6)
        a = TraceSet(name="x", traces=traces)
        binary_dir, jsonl_dir = tmp_path / "b", tmp_path / "j"
        a.save(binary_dir, format="binary", compress=True)
        a.save(jsonl_dir, format="jsonl")
        assert (TraceSet.load(binary_dir).digest()
                == TraceSet.load(jsonl_dir).digest() == a.digest())

    def test_corrupt_core_file_is_detected(self, tmp_path):
        directory = _tiny_traceset(tmp_path)
        manifest = json.loads((directory / "manifest.json").read_text())
        victim = directory / manifest["cores"][0]["file"]
        victim.write_bytes(victim.read_bytes()[:-1])
        with pytest.raises(ValueError, match="sha256 mismatch"):
            TraceSet.load(directory)

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="manifest"):
            TraceSet.load(tmp_path)

    def test_resave_removes_orphaned_core_files(self, tmp_path):
        directory = tmp_path / "set"
        three = TraceSet(
            name="shrinking",
            traces=capacity_pressure(num_cores=3, num_requests=20,
                                     seed=4),
        )
        three.save(directory, format="jsonl")
        assert len(list(directory.glob("core*"))) == 3
        TraceSet(
            name="shrinking", traces=three.traces[:1]
        ).save(directory, format="binary")
        loaded = TraceSet.load(directory)
        assert len(loaded.traces) == 1
        # the two dropped cores' files are gone, not silently orphaned
        assert len(list(directory.glob("core*"))) == 1

    def test_gzip_digest_covers_decompressed_content(self, tmp_path):
        """Manifests stay valid across zlib implementations."""
        import json as json_mod

        directory = _tiny_traceset(tmp_path, compress=True)
        manifest = json_mod.loads(
            (directory / "manifest.json").read_text()
        )
        core = manifest["cores"][0]
        import gzip
        import hashlib

        raw = gzip.decompress(
            (directory / core["file"]).read_bytes()
        )
        assert core["sha256"] == hashlib.sha256(raw).hexdigest()


class TestTraceJobsThroughEngine:
    """The acceptance-criteria checks."""

    def test_trace_job_end_to_end_with_warm_cache(self, tmp_path):
        directory = _tiny_traceset(tmp_path)
        spec = traceset_spec(directory, max_requests=60)
        jobs = [
            SimJob(workload=spec),
            SimJob(workload=spec, scheme="mithril", flip_th=6_250),
        ]
        cold = run_jobs(jobs, cache_dir=tmp_path / "cache")
        assert run_jobs.last_stats.simulated == 2
        assert cold[0].total_cycles > 0
        assert cold[1].scheme_name == "MithrilScheme"
        warm = run_jobs(jobs, cache_dir=tmp_path / "cache")
        assert run_jobs.last_stats.simulated == 0
        assert run_jobs.last_stats.cache_hits == 2
        assert warm == cold

    def test_capacity_pressure_job_end_to_end_with_warm_cache(
        self, tmp_path
    ):
        job = SimJob(
            workload=WorkloadSpec.make("capacity-pressure", scale=0.1,
                                       num_cores=2),
            scheme="graphene",
            flip_th=6_250,
        )
        cold = run_jobs([job], cache_dir=tmp_path / "cache")
        assert run_jobs.last_stats.simulated == 1
        warm = run_jobs([job], cache_dir=tmp_path / "cache")
        assert run_jobs.last_stats.simulated == 0
        assert warm == cold

    def test_rewritten_traceset_misses_the_stale_cache(self, tmp_path):
        directory = _tiny_traceset(tmp_path)
        before = traceset_spec(directory)
        TraceSet(
            name="tiny",
            traces=capacity_pressure(num_cores=2, num_requests=80,
                                     num_banks=8, seed=99),
        ).save(directory, format="binary")
        after = traceset_spec(directory)
        assert before.params != after.params  # digest param moved
        assert (SimJob(workload=before).job_hash()
                != SimJob(workload=after).job_hash())

    def test_trace_kind_builder_truncates_and_folds(self, tmp_path):
        directory = _tiny_traceset(tmp_path)
        spec = traceset_spec(directory, max_requests=10, num_banks=2)
        traces = build_workload(spec)
        assert all(len(t.entries) == 10 for t in traces)
        assert all(e.bank_index < 2 for t in traces for e in t.entries)

    def test_single_file_trace_job(self, tmp_path):
        path = tmp_path / "solo.jsonl"
        capacity_pressure(num_cores=1, num_requests=50, seed=8)[0].save(
            path
        )
        result = run_jobs(
            [SimJob(workload=traceset_spec(path))],
            cache_dir=tmp_path / "cache",
        )[0]
        assert result.total_cycles > 0


class TestShippedExampleSet:
    def test_loads_and_matches_committed_digest(self):
        traceset = TraceSet.load(EXAMPLE_SET)
        manifest = json.loads(
            (EXAMPLE_SET / "manifest.json").read_text()
        )
        assert traceset.digest() == manifest["digest"]
        assert {core["format"] for core in manifest["cores"]} == {
            "jsonl", "binary",
        }

    def test_characterizes(self):
        aggregate, per_core = characterize_traceset(
            TraceSet.load(EXAMPLE_SET)
        )
        assert aggregate.requests == 320
        assert len(per_core) == 2

    def test_runs_through_the_engine(self, tmp_path):
        job = SimJob(workload=traceset_spec(EXAMPLE_SET))
        result = run_jobs([job], cache_dir=tmp_path / "cache")[0]
        assert result.total_cycles > 0
        assert len(result.per_core_instructions) == 2


class TestIngestedWorkload:
    def test_csv_ingest_to_engine(self, tmp_path):
        source = tmp_path / "log.csv"
        lines = ["addr,cycle,op"]
        for i in range(60):
            lines.append(f"{64 * (17 * i % 4096)},{10 * i},"
                         f"{'WRITE' if i % 3 == 0 else 'READ'}")
        source.write_text("\n".join(lines) + "\n")
        traceset = ingest_files([source], name="csv-import",
                                mapping="row-bank-col")
        directory = tmp_path / "imported"
        traceset.save(directory)
        char = characterize_workload(TraceSet.load(directory).traces)
        assert char.requests == 60
        result = run_jobs(
            [SimJob(workload=traceset_spec(directory))],
            cache_dir=tmp_path / "cache",
        )[0]
        assert result.total_cycles > 0
