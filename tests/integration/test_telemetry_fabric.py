"""Integration: the telemetry fabric against real runs.

The ISSUE's acceptance criteria, at CI scale: telemetry never perturbs
results (byte-identical output with the fabric on), a chaos run's
merged timeline shows the injected worker crash / respawn / retry
backoff as distinct records whose Perfetto export validates, and a
quarantined campaign is visible through the live progress view.
"""

import json

from repro.engine import (
    SimJob,
    normal_workload_specs,
    result_to_dict,
    run_jobs,
)
from repro.engine.supervisor import RetryPolicy
from repro.faults import FAULT_PLAN_ENV
from repro.telemetry import merge_events, summarize_events, validate_perfetto
from repro.telemetry.perfetto import export_perfetto

TINY = 0.1


def _tiny_jobs(count=3):
    specs = normal_workload_specs(scale=TINY, num_cores=2)
    jobs = [
        SimJob(workload=specs["fft"]),
        SimJob(workload=specs["radix"]),
        SimJob(workload=specs["fft"], scheme="mithril", flip_th=6_250),
    ]
    return jobs[:count]


def _fast_policy(max_retries=2):
    return RetryPolicy(max_retries=max_retries, backoff_base_s=0.05,
                       backoff_cap_s=0.05, jitter=0.0)


def _dumps(results):
    return json.dumps(
        [result_to_dict(r) for r in results], sort_keys=True
    )


class TestNonPerturbation:
    def test_serial_results_identical_with_telemetry_on(
        self, monkeypatch, tmp_path
    ):
        jobs = _tiny_jobs(2)
        dark = run_jobs(jobs, use_cache=False)
        monkeypatch.setenv("REPRO_TELEMETRY", str(tmp_path / "tel"))
        lit = run_jobs(jobs, use_cache=False)
        assert _dumps(dark) == _dumps(lit)
        summary = summarize_events(merge_events(tmp_path / "tel"))
        assert summary["kinds"].get("run_jobs.done") == 1
        assert summary["kinds"].get("job.ok") == 2
        assert "job.execute" in summary["span_seconds"]

    def test_supervised_results_identical_with_telemetry_on(
        self, monkeypatch, tmp_path
    ):
        jobs = _tiny_jobs(3)
        dark = run_jobs(jobs, n_jobs=2, use_cache=False)
        monkeypatch.setenv("REPRO_TELEMETRY", str(tmp_path / "tel"))
        lit = run_jobs(jobs, n_jobs=2, use_cache=False)
        assert _dumps(dark) == _dumps(lit)
        # supervisor + at least one worker wrote their own streams
        summary = summarize_events(merge_events(tmp_path / "tel"))
        assert len(summary["processes"]) >= 2


class TestChaosTimeline:
    def test_crash_respawn_and_backoff_are_distinct_records(
        self, monkeypatch, tmp_path
    ):
        """An injected worker crash must be legible from the merged
        timeline alone: the crash, the replacement spawn, the retry
        with its backoff window, and the lease history of the dead
        worker (on the dead worker's own track).  Two jobs, so the
        supervised pool actually engages (one job collapses to the
        serial path)."""
        jobs = _tiny_jobs(2)
        monkeypatch.setenv(FAULT_PLAN_ENV, json.dumps({
            "state_dir": str(tmp_path / "fault-state"),
            "faults": [
                {"site": "worker.execute", "kind": "crash", "times": 1},
            ],
        }))
        tel_dir = tmp_path / "tel"
        monkeypatch.setenv("REPRO_TELEMETRY", str(tel_dir))
        results = run_jobs(jobs, n_jobs=2, use_cache=False,
                           retry_policy=_fast_policy())
        assert all(r is not None for r in results)
        assert run_jobs.last_stats.retried == 1

        merged = merge_events(tel_dir)
        kinds = summarize_events(merged)["kinds"]
        assert kinds.get("worker.crash") == 1
        assert kinds.get("job.retry") == 1
        assert kinds.get("worker.spawn", 0) >= 3  # 2 initial + respawn

        crash = next(r for r in merged if r["kind"] == "worker.crash")
        respawn = next(
            r for r in merged
            if r["kind"] == "worker.spawn" and "replaces" in r
        )
        assert respawn["replaces"] == crash["tid"]

        spans = [r for r in merged if r["kind"] == "span"]
        names = {s["name"] for s in spans}
        assert {"lease", "retry.backoff", "job.execute"} <= names
        # the crashed lease rides the dead worker's track
        crashed_lease = next(
            s for s in spans
            if s["name"] == "lease"
            and s.get("attrs", {}).get("result") == "crash"
        )
        assert crashed_lease["tid"] == crash["tid"]
        assert crashed_lease["pid"] != crash["tid"]  # supervisor wrote it

        payload = export_perfetto(tel_dir)
        assert validate_perfetto(payload) == []
        exported = {e["name"] for e in payload["traceEvents"]}
        assert {"worker.crash", "retry.backoff", "lease"} <= exported
        lease_tracks = {
            e["tid"] for e in payload["traceEvents"]
            if e["name"] == "lease"
        }
        assert crash["tid"] in lease_tracks


class TestCampaignProgress:
    def test_quarantine_visible_through_follow(
        self, monkeypatch, tmp_path
    ):
        """A poisoned campaign point surfaces everywhere the operator
        looks: the job.quarantine / campaign.done events, the progress
        snapshot, and the formatted --follow line."""
        import io

        from repro.campaigns import (
            CampaignSpec,
            ExperimentSpec,
            plan_campaign,
            run_campaign,
        )
        from repro.telemetry.progress import (
            campaign_progress,
            follow_campaign,
        )

        spec = CampaignSpec(
            name="telemetry-chaos",
            experiments=[
                ExperimentSpec(
                    name="f11",
                    kind="fig11",
                    params=dict(
                        scale=0.05, flip_thresholds=[6_250],
                        schemes=["mithril"], attack_seeds=[31],
                    ),
                )
            ],
        )
        poison = sorted(plan_campaign(spec).jobs)[0]
        monkeypatch.setenv(FAULT_PLAN_ENV, json.dumps({
            "faults": [{"site": "worker.execute", "kind": "error",
                        "match": poison, "times": None}],
        }))
        tel_dir = tmp_path / "tel"
        monkeypatch.setenv("REPRO_TELEMETRY", str(tel_dir))
        result = run_campaign(spec, max_retries=1)
        assert set(result.quarantined) == {poison}

        kinds = summarize_events(merge_events(tel_dir))["kinds"]
        assert kinds.get("job.quarantine") == 1
        assert kinds.get("campaign.start") == 1
        done = next(
            r for r in merge_events(tel_dir)
            if r["kind"] == "campaign.done"
        )
        assert done["quarantined"] == 1

        snap = campaign_progress(spec.name, telemetry_dir=tel_dir)
        assert snap["quarantined"] == 1
        assert snap["remaining"] == 0
        assert snap["status"] == "quarantined"

        out = io.StringIO()
        final = follow_campaign(
            spec.name, telemetry_dir=tel_dir, interval=0.0,
            out=out, sleep=lambda _s: None,
        )
        assert final["quarantined"] == 1
        assert "quarantined 1" in out.getvalue()
