"""Integration: every experiment driver runs end-to-end at tiny scale.

The benches assert the paper's shapes at full size; these tests only
verify the drivers execute, return well-formed rows, and stay wired to
the registry and the CLI.
"""

import pytest

from repro.experiments import (
    appendix_parfm,
    fig2,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    nonadjacent,
    table4,
)
from repro.experiments.runner import (
    EXPERIMENTS,
    geo_mean,
    normal_workloads,
    run_experiment,
)

TINY = 0.1


class TestDrivers:
    def test_fig2(self):
        rows = fig2.run(thresholds=(2_000, 500))
        assert len(rows) == 2
        assert all("arr_graphene_safe_flip_th" in row for row in rows)

    def test_fig6(self):
        rows = fig6.run(flip_thresholds=(6_250,), rfm_th_values=(64, 128))
        assert any(row["algorithm"] == "lossy-counting" for row in rows)

    def test_fig7(self):
        rows = fig7.run(configs=((6_250, 64),), adth_values=(0, 200),
                        scale=TINY)
        assert len(rows) == 2
        assert rows[0]["adth"] == 0

    def test_fig8(self):
        result = fig8.run(num_requests=1_024)
        assert result["accesses_per_activation"] > 1

    def test_fig9(self):
        rows = fig9.run(sweep=((6_250, 128),), scale=TINY)
        assert rows[0]["feasible"]

    def test_fig10(self):
        rows = fig10.run(
            flip_thresholds=(6_250,), schemes=("mithril",), scale=TINY,
            attack_seeds=(31,),
        )
        assert rows[0]["scheme"] == "mithril"
        assert 0 < rows[0]["normal_rel_perf_pct"] <= 110

    def test_fig11(self):
        rows = fig11.run(
            flip_thresholds=(6_250,), schemes=("graphene",), scale=TINY
        )
        assert rows[0]["scheme"] == "graphene"

    def test_table4(self):
        table = table4.run()
        assert "Graphene @ MC" in table

    def test_appendix(self):
        rows = appendix_parfm.run(flip_thresholds=(6_250,))
        assert rows[0]["parfm_rfm_th"] is not None

    def test_nonadjacent(self):
        rows = nonadjacent.run(flip_thresholds=(6_250,), acts=20_000)
        assert rows[0]["nonadjacent_entries"] > rows[0]["adjacent_entries"]


class TestRegistry:
    def test_all_experiments_registered(self):
        for name in ("fig2", "fig6", "fig7", "fig8", "fig9", "fig10",
                     "fig11", "table4", "appendix_parfm", "nonadjacent"):
            assert name in EXPERIMENTS

    def test_run_experiment_dispatch(self):
        rows = run_experiment("fig2")
        assert rows

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")


class TestRunnerHelpers:
    def test_geo_mean(self):
        assert geo_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geo_mean([]) == 0.0
        assert geo_mean([0.0, 5.0]) == pytest.approx(5.0)

    def test_normal_workloads_shape(self):
        workloads = normal_workloads(scale=TINY, num_cores=2)
        assert set(workloads) == {
            "mix-high", "mix-blend", "fft", "radix", "pagerank",
        }
        assert all(len(traces) == 2 for traces in workloads.values())
