"""Integration: the distributed campaign fabric under chaos (ISSUE 10).

Kill-any-process invariant, proven end to end with real coordinator +
agent subprocesses over the spool transport:

* **coordinator death** — ``kill -9`` inside a manifest checkpoint
  write; a resume re-simulates only what never reached the store;
* **host agent death** — a hard crash mid-chunk is detected, the
  chunk requeued, the agent respawned, and the campaign completes in
  the same run;
* **heartbeat partition** — a host whose heartbeats all drop keeps
  computing; its lease expires, its chunk is reassigned, and its late
  results are discarded as duplicates by hash, never double-ingested.

Every scenario ends the same way: a resume is a zero-simulation
no-op and ``campaign verify --strict`` signs off the store.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaigns import CampaignSpec, ExperimentSpec, plan_campaign
from repro.engine.cache import ResultCache
from repro.faults import CRASH_EXIT_CODE

TINY = 0.05

pytestmark = pytest.mark.slow


def _tiny_spec():
    """One fig11 sweep: 12 distinct points at trivial scale."""
    return CampaignSpec(
        name="chaos-dist",
        experiments=[
            ExperimentSpec(
                name="f11",
                kind="fig11",
                params=dict(
                    scale=TINY, flip_thresholds=[6_250],
                    schemes=["mithril"], attack_seeds=[31],
                ),
            )
        ],
    )


@pytest.fixture
def harness(tmp_path):
    spec = _tiny_spec()
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(spec.to_dict()))
    env = dict(os.environ)
    src = Path(__file__).resolve().parents[2] / "src"
    env["PYTHONPATH"] = str(src)
    env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
    env["REPRO_CAMPAIGN_DIR"] = str(tmp_path / "campaigns")
    env.pop("REPRO_FAULT_PLAN", None)
    env.pop("REPRO_TELEMETRY", None)
    return {
        "spec": spec,
        "spec_path": spec_path,
        "env": env,
        "tmp_path": tmp_path,
    }


def _run(harness, *extra, faults=None, check=True):
    env = dict(harness["env"])
    if faults is not None:
        plan_path = harness["tmp_path"] / "fault-plan.json"
        plan_path.write_text(json.dumps({
            "state_dir": str(harness["tmp_path"] / "fault-state"),
            "faults": faults,
        }))
        env["REPRO_FAULT_PLAN"] = str(plan_path)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "campaign", "run",
         str(harness["spec_path"]), "--hosts", "2", "--batch-size", "4",
         "--no-report", "--lease-timeout", "1", "--heartbeat", "0.2",
         *extra],
        env=env, capture_output=True, text=True, timeout=600,
    )
    if check and proc.returncode != 0:
        raise AssertionError(
            f"campaign run exited {proc.returncode}\n"
            f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
        )
    return proc


def _last_run_stats(harness):
    from repro.campaigns import CampaignManifest, manifest_path

    manifest = CampaignManifest.load(
        manifest_path("chaos-dist", harness["env"]["REPRO_CAMPAIGN_DIR"])
    )
    return manifest.data["runs"][-1]


def _verify_strict(harness):
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "campaign", "verify",
         str(harness["spec_path"]), "--strict", "--json"],
        env=harness["env"], capture_output=True, text=True, timeout=600,
    )
    payload = json.loads(proc.stdout)
    return proc.returncode, payload


def _settled_store_count(harness, quiet_s=1.0, timeout_s=60.0):
    """Store entry count once orphaned agents have wound down.

    After a coordinator kill the agent processes notice the dead
    parent and exit on their own, but they may finish their in-flight
    chunk first — wait for the store to go quiet before counting.
    """
    cache = ResultCache(harness["env"]["REPRO_CACHE_DIR"])
    deadline = time.monotonic() + timeout_s
    count = cache.entry_count()
    settled_at = time.monotonic()
    while time.monotonic() < deadline:
        time.sleep(0.1)
        now_count = cache.entry_count()
        if now_count != count:
            count = now_count
            settled_at = time.monotonic()
        elif time.monotonic() - settled_at >= quiet_s:
            break
    return count


class TestCoordinatorDeath:
    def test_kill_mid_checkpoint_then_resume_resimulates_nothing(
        self, harness
    ):
        total = plan_campaign(_tiny_spec()).total_points

        # -- kill -9 the coordinator inside a manifest checkpoint
        # write: completed points are in the store, their completion
        # records are not.
        proc = _run(harness, check=False, faults=[
            {"site": "manifest.write", "kind": "crash",
             "hard": True, "times": 1, "match": "chaos-dist"},
        ])
        assert proc.returncode == CRASH_EXIT_CODE, proc.stderr
        stored = _settled_store_count(harness)
        assert 0 < stored < total

        # -- clean resume: the store turns every point simulated
        # before the kill into a cache hit.
        _run(harness)
        stats = _last_run_stats(harness)
        assert stats["distributed"] is True
        assert stats["simulated"] == total - stored
        assert stats["simulated"] + stats["previously_complete"] + \
            stats["cache_hits"] == total

        # -- a further rerun is a zero-work, zero-process no-op
        proc = _run(harness)
        stats = _last_run_stats(harness)
        assert stats["submitted"] == 0
        assert stats["simulated"] == 0
        assert "cluster:" not in proc.stdout  # no agents spawned
        code, audit = _verify_strict(harness)
        assert code == 0, audit
        assert audit["verified"] == total


class TestHostAgentDeath:
    def test_agent_crash_is_detected_requeued_and_respawned(
        self, harness
    ):
        total = plan_campaign(_tiny_spec()).total_points

        # one agent takes a hard crash mid-chunk; the campaign must
        # absorb it in the same run
        proc = _run(harness, faults=[
            {"site": "worker.execute", "kind": "crash",
             "hard": True, "times": 1},
        ])
        assert "process exited" in proc.stdout
        stats = _last_run_stats(harness)
        assert stats["distributed"] is True
        assert stats["hosts_lost"] >= 1
        assert stats["hosts_restarted"] >= 1
        assert stats["reassigned"] >= 1

        _run(harness)
        assert _last_run_stats(harness)["simulated"] == 0
        code, audit = _verify_strict(harness)
        assert code == 0, audit
        assert audit["verified"] == total


class TestHeartbeatPartition:
    def test_partitioned_host_expires_and_late_results_discard(
        self, harness
    ):
        """Host 2's heartbeats all drop while a hang stretches its
        chunk past the lease: the chunk reassigns to host 1, and when
        host 2 finally reports, every one of its results is a late
        duplicate discarded by hash."""
        plan = plan_campaign(_tiny_spec())
        total = plan.total_points
        # chunks are dealt in plan order: host 1 gets jobs [0:4],
        # host 2 gets jobs [4:8] — hang host 2's first job only
        victim = list(plan.jobs)[4]

        proc = _run(harness, faults=[
            {"site": "host.heartbeat", "kind": "drop",
             "match": "2", "times": None},
            {"site": "worker.execute", "kind": "hang",
             "seconds": 2.0, "match": victim, "times": 1},
        ])
        assert "lease expired" in proc.stdout
        stats = _last_run_stats(harness)
        assert stats["distributed"] is True
        assert stats["hosts_lost"] >= 1
        assert stats["reassigned"] >= 1
        assert stats["duplicate_results"] >= 1
        assert stats["quarantined"] == 0

        _run(harness)
        assert _last_run_stats(harness)["simulated"] == 0
        code, audit = _verify_strict(harness)
        assert code == 0, audit
        assert audit["verified"] == total
        assert audit["duplicates"] == []  # store stayed exactly-once
