"""Integration: end-to-end system simulation sanity and shape checks."""

import pytest

from repro.core.mithril import MithrilScheme
from repro.mitigations.blockhammer import BlockHammerScheme
from repro.mitigations.graphene import GrapheneScheme
from repro.mitigations.parfm import ParfmScheme
from repro.params import DEFAULT_CONFIG
from repro.sim.system import SimulatedSystem, simulate
from repro.workloads.spec_like import mix_blend, mix_high
from repro.workloads.synthetic import streaming_sweep_trace
from repro.workloads.attacks import double_sided_trace


NUM_CORES = 4
REQUESTS = 1200
BANKS = 16


@pytest.fixture(scope="module")
def traces():
    return mix_high(num_cores=NUM_CORES, num_requests=REQUESTS,
                    num_banks=BANKS, seed=17)


@pytest.fixture(scope="module")
def baseline(traces):
    return simulate(traces, flip_th=6_250)


class TestBaselineRun:
    def test_all_requests_complete(self, traces, baseline):
        total = sum(len(t) for t in traces)
        assert baseline.row_hits + baseline.row_misses == total

    def test_positive_ipc(self, baseline):
        assert baseline.aggregate_ipc > 0

    def test_acts_at_most_accesses(self, baseline):
        assert baseline.acts <= baseline.row_hits + baseline.row_misses

    def test_refresh_happened(self, baseline):
        assert baseline.energy.auto_refreshes > 0

    def test_system_runs_once(self, traces):
        system = SimulatedSystem(traces)
        system.run()
        with pytest.raises(RuntimeError):
            system.run()

    def test_empty_traces_rejected(self):
        with pytest.raises(ValueError):
            simulate([])


class TestMithrilOverhead:
    def test_small_perf_overhead(self, traces, baseline):
        result = simulate(
            traces,
            scheme_factory=lambda: MithrilScheme(
                n_entries=256, rfm_th=128, adaptive_th=200
            ),
            rfm_th=128,
            flip_th=6_250,
        )
        rel = result.relative_performance(baseline)
        assert 95.0 < rel <= 101.0  # paper: <2% loss at FlipTH=6.25K

    def test_mithril_plus_lower_overhead_than_mithril(self, traces, baseline):
        mithril = simulate(
            traces,
            scheme_factory=lambda: MithrilScheme(
                n_entries=1130, rfm_th=32, adaptive_th=200
            ),
            rfm_th=32,
            flip_th=1_500,
        )
        plus = simulate(
            traces,
            scheme_factory=lambda: MithrilScheme(
                n_entries=1130, rfm_th=32, adaptive_th=200, plus=True
            ),
            rfm_th=32,
            flip_th=1_500,
        )
        assert plus.rfm_elided > 0
        assert plus.rfm_commands < mithril.rfm_commands
        # Mithril+ removes almost all RFM bank stalls.
        assert plus.rfm_stall_cycles < mithril.rfm_stall_cycles * 0.2

    def test_adaptive_skips_on_benign(self, traces):
        result = simulate(
            traces,
            scheme_factory=lambda: MithrilScheme(
                n_entries=256, rfm_th=128, adaptive_th=200
            ),
            rfm_th=128,
            flip_th=6_250,
        )
        assert result.rfms_skipped >= result.rfm_commands * 0.9

    def test_no_flips_with_protection(self, traces):
        result = simulate(
            traces,
            scheme_factory=lambda: MithrilScheme(n_entries=256, rfm_th=128),
            rfm_th=128,
            flip_th=6_250,
        )
        assert result.flips == 0


class TestSchedulerAndPolicyVariants:
    def test_frfcfs_runs(self, traces):
        config = DEFAULT_CONFIG.__class__(scheduler="frfcfs")
        result = simulate(traces, config=config)
        assert result.aggregate_ipc > 0

    def test_closed_page_policy_more_acts(self, traces):
        open_result = simulate(
            traces, config=DEFAULT_CONFIG.__class__(page_policy="open")
        )
        closed_result = simulate(
            traces, config=DEFAULT_CONFIG.__class__(page_policy="closed")
        )
        assert closed_result.acts >= open_result.acts


class TestAttackScenarios:
    def test_attacker_with_benign_cores(self):
        benign = mix_blend(num_cores=3, num_requests=REQUESTS,
                           num_banks=BANKS, seed=3)
        attacker = double_sided_trace(victim_row=5_000, bank_index=0,
                                      total_requests=REQUESTS * 2)
        result = simulate(
            benign + [attacker],
            scheme_factory=lambda: MithrilScheme(n_entries=525, rfm_th=64),
            rfm_th=64,
            flip_th=3_125,
        )
        assert result.flips == 0
        assert result.preventive_refresh_rows > 0

    def test_unprotected_attack_flips(self):
        attacker = double_sided_trace(victim_row=5_000, bank_index=0,
                                      total_requests=30_000)
        result = simulate([attacker], flip_th=1_500, mlp=8)
        assert result.flips > 0


class TestBlockHammerBehaviour:
    def test_throttles_attacker(self):
        attacker = double_sided_trace(victim_row=5_000, bank_index=0,
                                      total_requests=3_000)
        result = simulate(
            [attacker],
            scheme_factory=lambda: BlockHammerScheme(flip_th=1_500),
            flip_th=1_500,
        )
        assert result.throttle_events > 0
        assert result.flips == 0

    def test_throttling_slows_attacker(self):
        attacker = double_sided_trace(victim_row=5_000, bank_index=0,
                                      total_requests=3_000)
        base = simulate([attacker], flip_th=1_500)
        throttled = simulate(
            [attacker],
            scheme_factory=lambda: BlockHammerScheme(flip_th=1_500),
            flip_th=1_500,
        )
        assert throttled.total_cycles > base.total_cycles * 2


class TestArrSchemesInSimulation:
    def test_graphene_overhead_small_on_benign(self, traces, baseline):
        result = simulate(
            traces,
            scheme_factory=lambda: GrapheneScheme(flip_th=6_250),
            flip_th=6_250,
        )
        assert result.relative_performance(baseline) > 97.0

    def test_parfm_refreshes_every_rfm(self, traces):
        result = simulate(
            traces,
            scheme_factory=lambda: ParfmScheme(),
            rfm_th=68,
            flip_th=6_250,
        )
        assert result.rfm_commands > 0
        # PARFM refreshes victims on (almost) every RFM command
        assert result.preventive_refresh_rows >= result.rfm_commands
