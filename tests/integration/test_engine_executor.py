"""Integration: the sweep executor (dedup, cache, parallel determinism).

Pins down the engine's contract: a job batch yields the same
byte-identical results whether it runs serially, across worker
processes, or from a warm cache — and the stats counter proves the
warm path never calls ``simulate()``.
"""

import json

import pytest

from repro.engine import (
    SimJob,
    WorkloadSpec,
    attack_workload_spec,
    build_workload,
    execute_job,
    normal_workload_specs,
    result_to_dict,
    run_jobs,
    workload_kinds,
)

TINY = 0.1


def _tiny_jobs():
    specs = normal_workload_specs(scale=TINY, num_cores=2)
    return [
        SimJob(workload=specs["fft"]),
        SimJob(workload=specs["radix"]),
        SimJob(workload=specs["fft"], scheme="mithril", flip_th=6_250),
        SimJob(workload=specs["fft"], scheme="graphene", flip_th=6_250),
    ]


def _dumps(results):
    return json.dumps([result_to_dict(r) for r in results], sort_keys=True)


class TestCatalog:
    def test_registered_kinds(self):
        kinds = workload_kinds()
        for kind in ("mix-high", "mix-blend", "fft", "radix", "pagerank",
                     "attack"):
            assert kind in kinds

    def test_build_workload_is_deterministic(self):
        spec = WorkloadSpec.make("fft", scale=TINY, num_cores=2, seed=21)
        a = build_workload(spec)
        b = build_workload(spec)
        assert [t.entries for t in a] == [t.entries for t in b]

    def test_unknown_kind_raises(self):
        with pytest.raises(KeyError):
            build_workload(WorkloadSpec.make("no-such-kind"))

    def test_attack_spec_builds_attacker_plus_benign(self):
        spec = attack_workload_spec(
            "multi-sided", scale=TINY, num_cores=4, flip_th=6_250, seed=31
        )
        traces = build_workload(spec)
        assert len(traces) == 4


class TestExecutor:
    def test_results_align_with_input_order(self):
        jobs = _tiny_jobs()
        results = run_jobs(jobs, use_cache=False)
        assert len(results) == len(jobs)
        assert results[0] == execute_job(jobs[0])
        assert results[2].scheme_name == "MithrilScheme"

    def test_duplicates_simulate_once(self):
        jobs = _tiny_jobs()
        results = run_jobs([jobs[0], jobs[0], jobs[1]], use_cache=False)
        stats = run_jobs.last_stats
        assert stats.total == 3
        assert stats.unique == 2
        assert stats.simulated == 2
        assert results[0] == results[1]

    def test_parallel_results_are_byte_identical_to_serial(self):
        jobs = _tiny_jobs()
        serial = run_jobs(jobs, n_jobs=1, use_cache=False)
        parallel = run_jobs(jobs, n_jobs=4, use_cache=False)
        assert run_jobs.last_stats.n_jobs == 4
        assert _dumps(serial) == _dumps(parallel)

    def test_cache_hits_skip_simulation_and_match(self, tmp_path):
        jobs = _tiny_jobs()
        cold = run_jobs(jobs, n_jobs=1, cache_dir=tmp_path)
        stats = run_jobs.last_stats
        assert stats.simulated == len(jobs)
        assert stats.cache_hits == 0
        assert stats.cache_misses == len(jobs)
        assert stats.cache_quarantined == 0
        warm = run_jobs(jobs, n_jobs=4, cache_dir=tmp_path)
        stats = run_jobs.last_stats
        assert stats.simulated == 0
        assert stats.cache_hits == len(jobs)
        assert stats.cache_misses == 0
        assert stats.cache_quarantined == 0
        assert _dumps(cold) == _dumps(warm)

    def test_stats_carry_timing_breakdown(self, tmp_path):
        jobs = _tiny_jobs()[:1]
        run_jobs(jobs, cache_dir=tmp_path)
        timing = run_jobs.last_stats.timing_breakdown
        assert set(timing) >= {"cache_lookup", "execute", "cache_put"}
        assert all(v >= 0.0 for v in timing.values())
        run_jobs(jobs, cache_dir=tmp_path)
        warm_timing = run_jobs.last_stats.timing_breakdown
        assert "execute" not in warm_timing  # nothing simulated

    def test_corrupt_entry_counts_as_quarantined(self, tmp_path):
        from repro.engine.cache import ResultCache

        jobs = _tiny_jobs()[:1]
        run_jobs(jobs, cache_dir=tmp_path)
        entry = ResultCache(tmp_path).path_for(jobs[0])
        entry.write_text(entry.read_text()[: entry.stat().st_size // 2])
        run_jobs(jobs, cache_dir=tmp_path)
        stats = run_jobs.last_stats
        assert stats.cache_quarantined == 1
        assert stats.cache_hits == 0
        assert stats.simulated == 1

    def test_no_cache_ignores_existing_entries(self, tmp_path):
        jobs = _tiny_jobs()[:1]
        run_jobs(jobs, cache_dir=tmp_path)
        run_jobs(jobs, use_cache=False, cache_dir=tmp_path)
        assert run_jobs.last_stats.simulated == 1


class TestDriverDeterminism:
    """The ISSUE acceptance check, at CI-friendly scale."""

    def test_fig10_parallel_equals_serial_with_cache_reuse(
        self, monkeypatch, tmp_path
    ):
        from repro.experiments import fig10

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        kwargs = dict(
            flip_thresholds=(6_250,), schemes=("mithril",), scale=TINY,
            attack_seeds=(31,),
        )
        serial = fig10.run(n_jobs=1, use_cache=False, **kwargs)
        parallel = fig10.run(n_jobs=4, use_cache=True, **kwargs)
        assert json.dumps(serial) == json.dumps(parallel)
        warm = fig10.run(n_jobs=4, use_cache=True, **kwargs)
        assert run_jobs.last_stats.simulated == 0
        assert json.dumps(serial) == json.dumps(warm)

    def test_fig6_accepts_engine_kwargs(self):
        from repro.experiments import fig6

        rows_serial = fig6.run(
            flip_thresholds=(6_250,), rfm_th_values=(64,), n_jobs=1
        )
        rows_parallel = fig6.run(
            flip_thresholds=(6_250,), rfm_th_values=(64,), n_jobs=4
        )
        assert rows_serial == rows_parallel
