"""Optimized simulator == seed simulator, byte for byte — per backend.

The golden file (tests/golden/simulation_results.json) was captured
from the pre-optimization simulator.  Every hot-path change — the
zero-alloc event loop, the memoized schedulers, the array-backed
sketches, the turbo backend's fused drain — must leave each shipped
scheme's `SimulationResult` exactly identical on every workload here:
the comparison happens on canonical JSON, so even a float that differs
in its last bit fails.  Every record runs under **both** simulation
backends (``turbo`` skips when numpy is absent — there it falls back
to scalar anyway).

If a change is *meant* to alter results, regenerate via
``PYTHONPATH=src python tests/golden/generate_golden.py`` and say so in
the commit message.
"""

import json
from pathlib import Path

import pytest

from repro.engine.cache import result_to_dict
from repro.engine.executor import execute_job
from repro.engine.job import SimJob, WorkloadSpec
from repro.sim.backend import BACKEND_ENV, numpy_available

GOLDEN_PATH = (
    Path(__file__).resolve().parent.parent / "golden" / "simulation_results.json"
)


def _golden_records():
    with GOLDEN_PATH.open() as handle:
        return json.load(handle)


def _job_from_canonical(data) -> SimJob:
    workload = WorkloadSpec(
        kind=data["workload"]["kind"],
        params=tuple(
            (key, value) for key, value in data["workload"]["params"]
        ),
    )
    return SimJob(
        workload=workload,
        scheme=data["scheme"],
        scheme_params=tuple((k, v) for k, v in data["scheme_params"]),
        flip_th=data["flip_th"],
        rfm_th=data["rfm_th"],
        scale=data["scale"],
        mlp=data["mlp"],
        max_cycles=data["max_cycles"],
        track_hammer=data["track_hammer"],
        config_overrides=tuple(
            (k, v) for k, v in data["config_overrides"]
        ),
    )


def _canonical_json(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


RECORDS = _golden_records()


def _ids():
    return [
        f"{r['job']['workload']['kind']}-{r['job']['scheme']}"
        for r in RECORDS
    ]


@pytest.fixture(params=["scalar", "turbo"])
def backend(request, monkeypatch):
    if request.param == "turbo" and not numpy_available():
        pytest.skip("turbo backend needs numpy")
    monkeypatch.setenv(BACKEND_ENV, request.param)
    return request.param


@pytest.mark.parametrize("record", RECORDS, ids=_ids())
def test_result_matches_golden(record, backend):
    job = _job_from_canonical(record["job"])
    result = execute_job(job)
    assert _canonical_json(result_to_dict(result)) == _canonical_json(
        record["result"]
    )


def test_golden_covers_every_required_scheme():
    """The acceptance floor: 5 scheme families x >= 3 workloads."""
    schemes = {r["job"]["scheme"] for r in RECORDS}
    workloads = {r["job"]["workload"]["kind"] for r in RECORDS}
    assert {"none", "graphene", "mithril", "mithril+", "blockhammer"} <= schemes
    assert len(workloads) >= 3
