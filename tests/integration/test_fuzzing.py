"""Integration: randomized adversary search against Mithril.

The fuzzer samples structured random attack patterns; Mithril's
Theorem-1 guarantee must hold for all of them: zero flips and maximum
victim disturbance below FlipTH (in fact below 2M + slack).
"""

import pytest

pytestmark = pytest.mark.slow

from repro.core.bounds import estimated_growth_bound
from repro.core.config import min_entries_for
from repro.core.mithril import MithrilScheme
from repro.protection import NoProtection
from repro.verify.fuzzer import fuzz_scheme, worst_case

FLIP_TH = 3_125
RFM_TH = 64


@pytest.fixture(scope="module")
def mithril_results():
    n = min_entries_for(FLIP_TH, RFM_TH)
    return fuzz_scheme(
        lambda: MithrilScheme(n_entries=n, rfm_th=RFM_TH),
        flip_th=FLIP_TH,
        rfm_th=RFM_TH,
        iterations=15,
        acts_per_pattern=50_000,
        seed=2024,
    )


class TestMithrilFuzzing:
    def test_no_pattern_flips(self, mithril_results):
        for result in mithril_results:
            assert result.report.safe, result.pattern.name

    def test_worst_disturbance_below_flip_th(self, mithril_results):
        worst = worst_case(mithril_results)
        assert worst.report.max_disturbance < FLIP_TH

    def test_worst_disturbance_respects_theorem1(self, mithril_results):
        """Every victim's disturbance is at most twice the per-side
        growth bound M (two aggressors), with slack for the replay's
        shorter-than-tREFW horizon."""
        n = min_entries_for(FLIP_TH, RFM_TH)
        bound = 2 * estimated_growth_bound(n, RFM_TH)
        worst = worst_case(mithril_results)
        assert worst.report.max_disturbance <= bound

    def test_unprotected_fuzzing_does_flip(self):
        results = fuzz_scheme(
            NoProtection,
            flip_th=FLIP_TH,
            rfm_th=0,
            iterations=15,
            acts_per_pattern=50_000,
            seed=2024,
        )
        assert any(not r.report.safe for r in results)

    def test_adaptive_mithril_also_survives(self):
        n = min_entries_for(FLIP_TH, RFM_TH, adaptive_th=200)
        results = fuzz_scheme(
            lambda: MithrilScheme(
                n_entries=n, rfm_th=RFM_TH, adaptive_th=200
            ),
            flip_th=FLIP_TH,
            rfm_th=RFM_TH,
            iterations=10,
            acts_per_pattern=50_000,
            seed=77,
        )
        for result in results:
            assert result.report.safe, result.pattern.name
