"""Appendix C: PARFM failure probability and RFM_TH selection.

Expected shape: the selected RFM_TH meets the 1e-15 target; it drops
below Mithril's RFM_TH as FlipTH shrinks (the source of PARFM's energy
overhead in Figure 10(d)).
"""

from benchmarks.conftest import run_once
from repro.experiments import appendix_parfm


def test_appendix_parfm_failure(benchmark, save_rows, repro_scale):
    rows = run_once(benchmark, appendix_parfm.run)
    save_rows("appendix_parfm", rows)
    appendix_parfm.print_rows(rows)

    for row in rows:
        assert row["parfm_rfm_th"] is not None
        assert row["system_failure_probability"] < 1e-15

    by_flip = {row["flip_th"]: row for row in rows}
    # RFM_TH shrinks with FlipTH.
    ths = [by_flip[f]["parfm_rfm_th"]
           for f in (50_000, 25_000, 12_500, 6_250, 3_125, 1_500)]
    assert ths == sorted(ths, reverse=True)
    # At low FlipTH, PARFM must issue RFMs more often than Mithril.
    assert by_flip[1_500]["parfm_rfm_th"] < by_flip[1_500]["mithril_rfm_th"]
    assert by_flip[3_125]["parfm_rfm_th"] < by_flip[3_125]["mithril_rfm_th"]
