"""Figure 2: safe FlipTH of ARR-Graphene vs RFM-Graphene.

Expected shape: the ARR column grows linearly with the predefined
threshold; the RFM column never drops below a floor in the tens of
thousands no matter how low the threshold goes.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig2


def test_fig2_safe_flip_th(benchmark, save_rows, repro_scale):
    rows = run_once(benchmark, fig2.run, empirical=True, scale=repro_scale)
    save_rows("fig2", rows)
    fig2.print_rows(rows)

    by_threshold = {row["predefined_threshold"]: row for row in rows}
    # ARR is linear in the threshold.
    assert (
        by_threshold[8_000]["arr_graphene_safe_flip_th"]
        == 8 * by_threshold[1_000]["arr_graphene_safe_flip_th"]
    )
    # RFM-Graphene floors out: lowering the threshold stops helping and
    # eventually hurts.
    assert (
        by_threshold[250]["rfm_graphene_safe_flip_th"]
        > by_threshold[2_000]["rfm_graphene_safe_flip_th"]
    )
    assert all(
        row["rfm_graphene_safe_flip_th"] > 10_000 for row in rows
    )
    # Empirical replay: the concentration adversary drives real
    # disturbance far past the threshold-implied level.
    assert any(
        row["empirical_max_disturbance"] > row["predefined_threshold"]
        for row in rows
    )
