"""Figure 10: the RFM-interface-compatible scheme comparison.

Expected shapes (panels a-e):
(a) normal: Mithril/Mithril+ lose < ~5%/0.5%; BlockHammer collapses at
    FlipTH = 1.5K; PARFM degrades as FlipTH drops.
(c) BlockHammer's performance-adversarial pattern hurts BlockHammer
    itself far more than the RFM schemes.
(d) PARFM's energy overhead is far above Mithril's (adaptive refresh).
(e) Mithril's table is several times smaller than BlockHammer's.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig10

FLIP_THS = (50_000, 25_000, 12_500, 6_250, 3_125, 1_500)


def test_fig10_rfm_scheme_comparison(
    benchmark, save_rows, repro_scale, repro_jobs, repro_use_cache
):
    rows = run_once(
        benchmark, fig10.run, flip_thresholds=FLIP_THS, scale=repro_scale,
        n_jobs=repro_jobs, use_cache=repro_use_cache,
    )
    save_rows("fig10", rows)
    fig10.print_rows(rows)

    def cell(scheme, flip_th):
        return next(
            r for r in rows
            if r["scheme"] == scheme and r["flip_th"] == flip_th
        )

    for flip_th in FLIP_THS:
        # (a) Mithril+ ~ zero overhead; Mithril bounded.
        assert cell("mithril+", flip_th)["normal_rel_perf_pct"] > 99.0
        assert cell("mithril", flip_th)["normal_rel_perf_pct"] > 92.0
        # (d) PARFM pays more energy than Mithril once RFMs are frequent
        # (at 50K/25K both are within measurement noise of zero).
        if flip_th <= 12_500:
            assert (
                cell("parfm", flip_th)["normal_energy_overhead_pct"]
                > cell("mithril", flip_th)["normal_energy_overhead_pct"]
            )
        # (e) Mithril's table is much smaller than BlockHammer's.
        assert (
            cell("blockhammer", flip_th)["table_kb"]
            > 3 * cell("mithril", flip_th)["table_kb"]
        )

    # (a) BlockHammer collapses at the lowest FlipTH...
    assert cell("blockhammer", 1_500)["normal_rel_perf_pct"] < 85.0
    # ...but is fine at high FlipTH.
    assert cell("blockhammer", 50_000)["normal_rel_perf_pct"] > 98.0

    # (c) The adversarial pattern hurts BlockHammer more than Mithril+.
    assert (
        cell("blockhammer", 1_500)["bh_adversarial_rel_perf_pct"]
        < cell("mithril+", 1_500)["bh_adversarial_rel_perf_pct"] - 5.0
    )

    # PARFM's energy overhead grows sharply as FlipTH drops.
    assert (
        cell("parfm", 1_500)["normal_energy_overhead_pct"]
        > cell("parfm", 50_000)["normal_energy_overhead_pct"] * 10
    )
