"""Figure 6: the (Nentry, RFM_TH) configuration space per FlipTH.

Expected shape: for every FlipTH the table grows with RFM_TH; smaller
FlipTH needs bigger tables; high RFM_TH becomes infeasible at low
FlipTH; the Lossy-Counting variant needs strictly larger tables.
"""

from collections import defaultdict

from benchmarks.conftest import run_once
from repro.experiments import fig6


def test_fig6_configuration_space(benchmark, save_rows, repro_scale):
    rows = run_once(benchmark, fig6.run, scale=repro_scale)
    save_rows("fig6", rows)
    fig6.print_rows(rows)

    cbs = defaultdict(dict)
    lossy = defaultdict(dict)
    for row in rows:
        target = cbs if row["algorithm"] == "cbs" else lossy
        target[row["flip_th"]][row["rfm_th"]] = row["table_kb"]

    # Larger RFM_TH -> larger table (the Figure 6 trade-off).
    for flip_th, curve in cbs.items():
        feasible = [kb for _, kb in sorted(curve.items()) if kb is not None]
        assert feasible == sorted(feasible)

    # Smaller FlipTH -> larger table at a fixed RFM_TH.
    assert cbs[1_500][32] > cbs[6_250][32] > cbs[50_000][32]

    # RFM_TH = 256 infeasible at FlipTH = 1.5K.
    assert cbs[1_500][256] is None
    assert cbs[1_500][32] is not None

    # The Lossy-Counting table is larger wherever both are feasible.
    for flip_th in (50_000, 25_000):
        for rfm_th, kb in lossy[flip_th].items():
            if kb is not None and cbs[flip_th][rfm_th] is not None:
                assert kb > cbs[flip_th][rfm_th]
