"""Benchmark-harness helpers.

Every bench regenerates one table/figure of the paper: it runs the
experiment driver under pytest-benchmark (one round — these are
simulations, not microbenchmarks), prints the same rows the paper
reports, and saves the raw rows to ``results/<id>.json`` for
EXPERIMENTS.md.

``--repro-scale`` adjusts trace lengths (default 0.5 keeps the full
suite in a few minutes; 1.0+ tightens the statistics).
``--repro-jobs`` fans each driver's simulation jobs out over worker
processes; ``--repro-no-cache`` bypasses the on-disk result cache
(see docs/ENGINE.md).

Caching is on by default so a re-run regenerates figures in seconds —
but that means a warm-cache run's *recorded timings* measure cache
reads, not simulation.  Pass ``--repro-no-cache`` (or clear via
``python -m repro.cli cache --clear``) when the benchmark numbers
themselves matter.
"""

import json
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--repro-scale",
        action="store",
        type=float,
        default=0.5,
        help="trace-length multiplier for simulation benches",
    )
    parser.addoption(
        "--repro-jobs",
        action="store",
        type=int,
        default=1,
        help="worker processes for simulation jobs (default 1 = serial)",
    )
    parser.addoption(
        "--repro-no-cache",
        action="store_true",
        help="bypass the on-disk simulation result cache",
    )


@pytest.fixture
def repro_scale(request):
    return request.config.getoption("--repro-scale")


@pytest.fixture
def repro_jobs(request):
    return request.config.getoption("--repro-jobs")


@pytest.fixture
def repro_use_cache(request):
    return not request.config.getoption("--repro-no-cache")


@pytest.fixture
def save_rows():
    def _save(name, rows):
        RESULTS_DIR.mkdir(exist_ok=True)
        with (RESULTS_DIR / f"{name}.json").open("w") as handle:
            json.dump(rows, handle, indent=2, default=str)

    return _save


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(
        func, args=args, kwargs=kwargs, rounds=1, iterations=1
    )
