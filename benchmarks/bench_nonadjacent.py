"""Section V-C: non-adjacent RowHammer configuration and safety.

Expected shape: protecting a blast range of 3 (aggregated effect 3.5)
roughly doubles the table; the range-aware configuration keeps the
wide-blast fault model flip-free where the adjacent-only configuration
lets disturbance approach FlipTH.
"""

from benchmarks.conftest import run_once
from repro.experiments import nonadjacent


def test_nonadjacent_rowhammer(benchmark, save_rows, repro_scale):
    rows = run_once(benchmark, nonadjacent.run, scale=repro_scale)
    save_rows("nonadjacent", rows)
    nonadjacent.print_rows(rows)

    for row in rows:
        assert row["nonadjacent_entries"] is not None
        # M < FlipTH/3.5 instead of FlipTH/2: substantially more entries.
        assert row["nonadjacent_entries"] > 1.4 * row["adjacent_entries"]
        # The range-aware scheme absorbs the wide-blast adversary.
        assert row["wide_scheme_flips"] == 0
        assert row["wide_scheme_max_disturbance"] < row["flip_th"] / 3.5
        # The adjacent-only scheme leaks far more disturbance.
        assert (
            row["narrow_scheme_max_disturbance"]
            > 4 * row["wide_scheme_max_disturbance"]
        )
