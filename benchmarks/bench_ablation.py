"""Ablations of Mithril's design choices (DESIGN.md's list).

* greedy (MaxPtr) selection vs random vs round-robin victim choice;
* demote-to-min vs reset-to-zero after a preventive refresh;
* BLISS vs FR-FCFS interaction with RFM stalls;
* AdTH sensitivity beyond the paper's range.

Each ablation reports the safety headroom (max disturbance under a
worst-case adversary) or the performance cost, demonstrating *why* the
paper's choices are the right ones.
"""

import random

import pytest

from benchmarks.conftest import run_once
from repro.core.config import min_entries_for
from repro.core.mithril import MithrilScheme
from repro.verify.adversary import many_sided_stream, round_robin_stream
from repro.verify.safety import run_safety_trace

FLIP_TH = 3_125
RFM_TH = 64
ACTS = 120_000


class RandomSelectMithril(MithrilScheme):
    """Ablation: pick a random table entry instead of the maximum."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._rng = random.Random(7)

    def on_rfm(self, cycle):
        self.stats.rfms_received += 1
        entries = list(self.table.items())
        if not entries:
            return []
        row, _count = entries[self._rng.randrange(len(entries))]
        self.table._summary.demote_to_min(row)
        victims = self._victims(row)
        self.stats.preventive_refresh_rows += len(victims)
        return victims


class RoundRobinSelectMithril(MithrilScheme):
    """Ablation: rotate through table slots instead of greedy max."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._cursor = 0

    def on_rfm(self, cycle):
        self.stats.rfms_received += 1
        entries = sorted(self.table.items())
        if not entries:
            return []
        row, _count = entries[self._cursor % len(entries)]
        self._cursor += 1
        self.table._summary.demote_to_min(row)
        victims = self._victims(row)
        self.stats.preventive_refresh_rows += len(victims)
        return victims


def _headroom(scheme_cls, stream_factory):
    n = min_entries_for(FLIP_TH, RFM_TH)
    scheme = scheme_cls(n_entries=n, rfm_th=RFM_TH, counter_bits=62)
    report = run_safety_trace(
        scheme, stream_factory(), FLIP_TH, rfm_th=RFM_TH
    )
    return report


def test_ablation_greedy_selection_is_necessary(benchmark, save_rows):
    """Greedy MaxPtr selection beats random and round-robin selection
    against the tracker-thrashing adversary."""

    def study():
        stream = lambda: many_sided_stream(33, ACTS)
        return {
            "greedy": _headroom(MithrilScheme, stream).max_disturbance,
            "random": _headroom(RandomSelectMithril, stream).max_disturbance,
            "round-robin": _headroom(
                RoundRobinSelectMithril, stream
            ).max_disturbance,
        }

    result = run_once(benchmark, study)
    save_rows("ablation_selection", result)
    print(result)
    assert result["greedy"] < FLIP_TH
    assert result["greedy"] <= result["random"]
    assert result["greedy"] <= result["round-robin"]
    # Greedy should win by a wide margin against the concentrated attack.
    assert result["random"] > 2 * result["greedy"]


class ResetToZeroMithril(MithrilScheme):
    """Ablation: zero the refreshed entry instead of demote-to-min.

    Violates inequality (2): the entry's estimate drops below the bound
    needed to stay conservative for the *other* rows that shared its
    slot history, and the entry itself becomes the table minimum,
    letting an attacker cycle it out cheaply.
    """

    def on_rfm(self, cycle):
        self.stats.rfms_received += 1
        selected = self.table.greedy_select()
        if selected is None:
            return []
        row, count = selected
        summary = self.table._summary
        bucket_move = count  # force to zero via internal move
        summary._move(row, count, 0)
        victims = self._victims(row)
        self.stats.preventive_refresh_rows += len(victims)
        return victims


def test_ablation_demote_to_min_vs_reset_to_zero(benchmark, save_rows):
    """Why demote-to-min and not reset-to-zero (Section IV-B)?

    Zeroing pins the table minimum at 0, so the adaptive-refresh signal
    (max - min) stays artificially large on benign traffic and the
    energy-saving skip of Section V-A stops firing.  Demote-to-min
    keeps the minimum rising with the stream, letting benign runs skip
    almost every preventive refresh.  Both variants stay safe.
    """

    def study():
        from repro.verify.adversary import random_stream

        n = min_entries_for(FLIP_TH, RFM_TH, adaptive_th=200)
        rows = {}
        for name, cls in (
            ("demote-to-min", MithrilScheme),
            ("reset-to-zero", ResetToZeroMithril),
        ):
            scheme = cls(
                n_entries=n, rfm_th=RFM_TH, adaptive_th=200,
                counter_bits=62,
            )
            report = run_safety_trace(
                scheme,
                random_stream(4 * n, ACTS, seed=13),
                FLIP_TH,
                rfm_th=RFM_TH,
            )
            total = scheme.stats.rfms_received or 1
            rows[name] = {
                "max_disturbance": report.max_disturbance,
                "preventive_rows": report.preventive_refresh_rows,
                "skip_rate": scheme.stats.rfms_skipped / total,
            }
        return rows

    result = run_once(benchmark, study)
    save_rows("ablation_decrement", result)
    print(result)
    for variant in result.values():
        assert variant["max_disturbance"] < FLIP_TH
    # Demote-to-min preserves the adaptive skip on benign traffic...
    assert result["demote-to-min"]["skip_rate"] > 0.5
    # ...and therefore refreshes far less than the zeroing variant.
    assert (
        result["demote-to-min"]["preventive_rows"]
        < result["reset-to-zero"]["preventive_rows"]
    )


def test_ablation_adth_sensitivity(benchmark, save_rows):
    """Pushing AdTH far above the paper's range erodes the bound:
    Theorem 2's required table grows quickly."""

    def study():
        return {
            adth: min_entries_for(FLIP_TH, RFM_TH, adth)
            for adth in (0, 100, 200, 400, 800, 1600)
        }

    result = run_once(benchmark, study)
    save_rows("ablation_adth", result)
    print(result)
    sizes = [v for v in result.values() if v is not None]
    assert sizes == sorted(sizes)
    assert result[1600] is None or result[1600] > 1.5 * result[0]


def test_ablation_scheduler_interaction(benchmark, save_rows, repro_scale):
    """RFM stalls cost more under FR-FCFS than BLISS-style batching is
    not guaranteed; what matters is both stay small (< a few %)."""
    from repro.core.config import paper_default_config
    from repro.params import SystemConfig
    from repro.sim.system import simulate
    from repro.workloads.spec_like import mix_high

    def study():
        config = paper_default_config(3_125, adaptive_th=200)
        traces = mix_high(4, int(1200 * repro_scale) + 64, 16, seed=77)
        rows = {}
        for scheduler in ("bliss", "frfcfs"):
            system_config = SystemConfig(scheduler=scheduler)
            base = simulate(traces, config=system_config)
            result = simulate(
                traces,
                scheme_factory=lambda: MithrilScheme(
                    n_entries=config.n_entries,
                    rfm_th=config.rfm_th,
                    adaptive_th=config.adaptive_th,
                ),
                rfm_th=config.rfm_th,
                flip_th=3_125,
                config=system_config,
            )
            rows[scheduler] = round(result.relative_performance(base), 3)
        return rows

    result = run_once(benchmark, study)
    save_rows("ablation_scheduler", result)
    print(result)
    for scheduler, rel in result.items():
        assert rel > 93.0, f"{scheduler}: {rel}"
