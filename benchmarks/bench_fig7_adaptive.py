"""Figure 7: adaptive-refresh energy savings vs AdTH.

Expected shape: AdTH = 0 pays full preventive-refresh energy; AdTH in
the 100-200 range nearly eliminates it on benign workloads; the extra
table entries stay bounded (~12% worst case in the paper).
"""

from benchmarks.conftest import run_once
from repro.experiments import fig7


def test_fig7_adaptive_refresh(
    benchmark, save_rows, repro_scale, repro_jobs, repro_use_cache
):
    rows = run_once(
        benchmark, fig7.run, scale=repro_scale, n_jobs=repro_jobs,
        use_cache=repro_use_cache,
    )
    save_rows("fig7", rows)
    fig7.print_rows(rows)

    for flip_th, rfm_th in ((3_125, 16), (6_250, 64)):
        series = [
            row for row in rows
            if row["flip_th"] == flip_th and row["rfm_th"] == rfm_th
        ]
        base = next(row for row in series if row["adth"] == 0)
        tuned = next(row for row in series if row["adth"] == 200)
        # Energy drops by a large factor once AdTH filters benign
        # patterns (both workload classes).
        assert (
            tuned["energy_overhead_multiprogrammed_pct"]
            < base["energy_overhead_multiprogrammed_pct"] * 0.6
        )
        assert (
            tuned["energy_overhead_multithreaded_pct"]
            < base["energy_overhead_multithreaded_pct"] * 0.4
        )
        # Most RFMs skip their preventive refresh at AdTH=200.
        assert tuned["rfms_skipped_pct"] > 90.0
        # Theorem 2's price: bounded extra entries (paper: <= ~12%).
        assert 0.0 <= tuned["additional_entries_pct"] <= 20.0
