"""Extension: DRAM-parameter sensitivity of the Mithril configuration.

Not a paper figure — the deployment questions Section IV-D raises:
how the Theorem-1 table moves with the refresh window, tRFM, and tRC.
Expected shapes: a 64 ms window (DDR4-style) roughly doubles the table;
halving tRFM barely moves it; faster tRC (more ACT slots per window)
grows it.
"""

from benchmarks.conftest import run_once
from repro.analysis.sensitivity import (
    act_rate_sensitivity,
    refresh_window_sensitivity,
    rfm_window_sensitivity,
)


def test_sensitivity_sweeps(benchmark, save_rows, repro_scale):
    def study():
        return {
            "trefw": refresh_window_sensitivity(),
            "trfm": rfm_window_sensitivity(),
            "trc": act_rate_sensitivity(),
        }

    result = run_once(benchmark, study)
    save_rows("sensitivity", result)
    for name, rows in result.items():
        print(f"-- {name}")
        for row in rows:
            print(
                f"   {row['value']:>12.2f}  Nentry={row['n_entries']}  "
                f"KB={row['table_kb']}"
            )

    trefw = {row["value"]: row["n_entries"] for row in result["trefw"]}
    assert trefw[64e6] > 1.5 * trefw[32e6]
    assert trefw[16e6] < trefw[32e6]

    trfm = [row["n_entries"] for row in result["trfm"]]
    assert max(trfm) <= 1.2 * min(trfm)  # tRFM is a second-order effect

    trc = {round(row["value"], 2): row["n_entries"]
           for row in result["trc"]}
    fastest, slowest = min(trc), max(trc)
    assert trc[fastest] >= trc[slowest]
