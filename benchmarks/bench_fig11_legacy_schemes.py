"""Figure 11: comparison with RFM-non-compatible schemes.

Expected shapes: Mithril+ is comparable to Graphene/TWiCe/CBT (all near
100% on normal workloads); Mithril's loss stays bounded; PARA's energy
overhead dwarfs the deterministic schemes' as FlipTH drops.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig11

FLIP_THS = (50_000, 12_500, 3_125, 1_500)


def test_fig11_legacy_scheme_comparison(
    benchmark, save_rows, repro_scale, repro_jobs, repro_use_cache
):
    rows = run_once(
        benchmark, fig11.run, flip_thresholds=FLIP_THS, scale=repro_scale,
        n_jobs=repro_jobs, use_cache=repro_use_cache,
    )
    save_rows("fig11", rows)
    fig11.print_rows(rows)

    def cell(scheme, flip_th):
        return next(
            r for r in rows
            if r["scheme"] == scheme and r["flip_th"] == flip_th
        )

    for flip_th in FLIP_THS:
        # Legacy deterministic ARR schemes barely hurt benign runs.
        for scheme in ("graphene", "twice", "cbt"):
            assert cell(scheme, flip_th)["normal_rel_perf_pct"] > 97.0
        # Mithril+ is comparable to them (paper: within ~0.2%).
        assert cell("mithril+", flip_th)["normal_rel_perf_pct"] > 99.0
        # Mithril within a few percent even at 1.5K.
        assert cell("mithril", flip_th)["normal_rel_perf_pct"] > 92.0

    # PARA's energy overhead explodes at low FlipTH versus Mithril's.
    assert (
        cell("para", 1_500)["normal_energy_overhead_pct"]
        > 5 * cell("mithril", 1_500)["normal_energy_overhead_pct"]
    )
    assert (
        cell("para", 1_500)["normal_energy_overhead_pct"]
        > cell("para", 50_000)["normal_energy_overhead_pct"]
    )
