"""Table IV: per-bank table size comparison.

Expected shape: Mithril rows are the smallest at (almost) every FlipTH;
TWiCe is an order of magnitude above Graphene; BlockHammer's row
matches the paper's KB values almost exactly.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import table4

PAPER_BLOCKHAMMER = {
    50_000: 3.75, 25_000: 3.5, 12_500: 3.25,
    6_250: 6.0, 3_125: 11.0, 1_500: 18.0,
}
PAPER_MITHRIL_32 = {
    50_000: 0.06, 25_000: 0.13, 12_500: 0.27,
    6_250: 0.57, 3_125: 1.38, 1_500: 4.64,
}


def test_table4_sizes(benchmark, save_rows, repro_scale):
    table = run_once(benchmark, table4.run)
    save_rows("table4", table)
    table4.print_rows(table)

    blockhammer = table["BlockHammer @ MC"]
    for flip_th, expected in PAPER_BLOCKHAMMER.items():
        assert blockhammer[flip_th] == pytest.approx(expected, rel=0.15)

    mithril32 = table["Mithril-32 @ DRAM"]
    for flip_th, expected in PAPER_MITHRIL_32.items():
        assert mithril32[flip_th] == pytest.approx(expected, rel=0.45)

    for flip_th in (50_000, 25_000, 12_500, 6_250):
        assert table["TWiCe @ buffer chip"][flip_th] > 5 * table[
            "Graphene @ MC"
        ][flip_th]
        assert mithril32[flip_th] < table["Graphene @ MC"][flip_th]
        assert mithril32[flip_th] < blockhammer[flip_th] / 4


def test_table4_regenerates_quickly(benchmark):
    """The analytic model is cheap enough to embed anywhere."""
    table = benchmark(table4.run)
    assert table
