"""Figure 9: Mithril vs Mithril+ performance/area trade-off.

Expected shape: Mithril+ sits at ~100% everywhere; Mithril's loss grows
as RFM_TH shrinks and stays under a few percent; the table grows as
FlipTH drops; FlipTH = 6.25K at RFM_TH = 128 costs < 1% and ~1KB.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig9


def test_fig9_tradeoff(
    benchmark, save_rows, repro_scale, repro_jobs, repro_use_cache
):
    rows = run_once(
        benchmark, fig9.run, scale=repro_scale, n_jobs=repro_jobs,
        use_cache=repro_use_cache,
    )
    save_rows("fig9", rows)
    fig9.print_rows(rows)

    feasible = [row for row in rows if row.get("feasible")]
    assert feasible

    for row in feasible:
        # Mithril+ has (near-)zero overhead at every configuration.
        assert row["mithril_plus_rel_perf_pct"] > 99.0
        # Mithril stays within a few percent (paper: < ~2%; allow slack
        # for short-trace noise).
        assert row["mithril_rel_perf_pct"] > 93.0
        assert (
            row["mithril_plus_rel_perf_pct"]
            >= row["mithril_rel_perf_pct"] - 1.0
        )

    # Paper headline: FlipTH=6.25K @ RFM_TH=128 -> <1% loss, ~1KB table.
    headline = next(
        row for row in feasible
        if row["flip_th"] == 6_250 and row["rfm_th"] == 128
    )
    assert headline["mithril_rel_perf_pct"] > 98.0
    assert headline["table_kb"] < 1.5

    # Area grows as FlipTH shrinks at fixed RFM_TH.
    by_key = {(r["flip_th"], r["rfm_th"]): r for r in feasible}
    if (12_500, 128) in by_key and (3_125, 128) in by_key:
        assert (
            by_key[(3_125, 128)]["table_kb"]
            > by_key[(12_500, 128)]["table_kb"]
        )
