"""Figure 8: the lbm-style large-object sweep.

Expected shape: accesses concentrate in ~128-per-row bursts (8KB row /
64B line), the small window touches few distinct rows, and bursts match
the AdTH = 100-200 range the adaptive policy exploits.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig8


def test_fig8_sweep_pattern(benchmark, save_rows, repro_scale):
    result = run_once(benchmark, fig8.run, scale=max(repro_scale, 1.0))
    save_rows(
        "fig8",
        {k: v for k, v in result.items() if not k.startswith("accessed")},
    )
    fig8.print_rows(result)

    # The paper's number: 128 streamed accesses per row.
    assert 64 <= result["mean_burst_length"] <= 200
    # Bursts land inside the effective AdTH range of Section V-A.
    assert 100 <= result["max_burst_length"] <= 256
    # Concentration: few distinct rows inside the small window.
    assert result["distinct_rows_small_window"] <= 16
    # The pattern itself (a) sweeps a large footprint over the long run.
    assert len(set(result["accessed_rows_large_window"])) > 16
