"""Standalone simulator speed benchmark (see src/repro/speed.py).

Times `simulate()` over representative workload x scheme pairs and
appends a labelled entry to the ``BENCH_SIM_SPEED.json`` trajectory at
the repository root::

    PYTHONPATH=src python benchmarks/bench_speed.py --preset medium \
        --label optimized

Unlike the figure benches in this directory, this file is not a pytest
bench: it owns wall-clock, not statistics, and a one-shot script keeps
the timed region free of harness overhead.  The `repro bench-speed`
CLI subcommand is the same harness for installed use.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.speed import (  # noqa: E402  (path bootstrap above)
    DEFAULT_OUTPUT,
    UncontrolledSpeedClaim,
    preset_names,
    run_and_report,
    run_controlled_pairs,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", choices=preset_names(), default="medium")
    parser.add_argument("--label", default="dev",
                        help="entry label (e.g. baseline / optimized)")
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / DEFAULT_OUTPUT),
        help="trajectory file to append to ('-' disables recording)",
    )
    parser.add_argument(
        "--allow-uncontrolled", action="store_true",
        help="record a *-controlled entry even without its back-to-back "
             "baseline-controlled partner (warns instead of refusing)",
    )
    parser.add_argument(
        "--backend", choices=["scalar", "turbo"], default=None,
        help="simulation backend to time (with --pairs: the candidate "
             "backend, default turbo)",
    )
    parser.add_argument(
        "--pairs", type=int, default=0,
        help="run N back-to-back scalar-vs-candidate pairs and record "
             "the median pair (label must end in -controlled)",
    )
    args = parser.parse_args(argv)
    output = None if args.output == "-" else Path(args.output)
    try:
        if args.pairs:
            run_controlled_pairs(
                args.preset,
                args.pairs,
                args.label,
                output=output,
                candidate_backend=args.backend or "turbo",
                allow_uncontrolled=args.allow_uncontrolled,
            )
        else:
            run_and_report(
                args.preset,
                args.label,
                output=output,
                allow_uncontrolled=args.allow_uncontrolled,
                backend=args.backend,
            )
    except ValueError as error:  # incl. UncontrolledSpeedClaim
        print(f"refusing to record: {error}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
